// Tests for the queueing substrate, validated against M/M/1 analytics.
#include <gtest/gtest.h>

#include "sim/queueing.h"

namespace bh::sim {
namespace {

TEST(QueueStationTest, RejectsBadService) {
  EventQueue q;
  EXPECT_THROW(QueueStation(q, 0.0, 1), std::invalid_argument);
}

TEST(QueueStationTest, ServesFifo) {
  EventQueue q;
  QueueStation s(q, 1.0, 7);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.submit([&order, i](SimTime) { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(s.completed(), 5u);
}

TEST(QueueStationTest, SojournCoversWaitingAndService) {
  EventQueue q;
  QueueStation s(q, 0.5, 11);
  // Two simultaneous jobs: the second waits for the first.
  SimTime first = 0, second = 0;
  s.submit([&](SimTime t) { first = t; });
  s.submit([&](SimTime t) { second = t; });
  q.run_all();
  EXPECT_GT(second, first);
  EXPECT_GT(s.mean_sojourn(), 0.5 * 0.5);  // at least half a mean service
}

TEST(QueueStationTest, IdleStationUtilizationMatchesLoad) {
  const auto r = run_station_chain(1, /*arrival_rate=*/2.0,
                                   /*mean_service=*/0.2, 50000, 99);
  // rho = lambda * s = 0.4.
  EXPECT_NEAR(r.per_station_utilization, 0.4, 0.05);
}

// M/M/1: mean time in system = s / (1 - rho).
class Mm1Test : public ::testing::TestWithParam<double> {};

TEST_P(Mm1Test, MeanSojournMatchesAnalytic) {
  const double rho = GetParam();
  const double service = 0.1;
  const auto r = run_station_chain(1, rho / service, service, 120000, 31);
  const double analytic = service / (1.0 - rho);
  EXPECT_EQ(r.jobs, 120000u);
  EXPECT_NEAR(r.mean_end_to_end, analytic, analytic * 0.15) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1Test, ::testing::Values(0.2, 0.5, 0.7));

TEST(StationChainTest, MoreHopsCostMore) {
  const double service = 0.05;
  const auto one = run_station_chain(1, 10.0, service, 40000, 5);
  const auto three = run_station_chain(3, 10.0, service, 40000, 5);
  EXPECT_GT(three.mean_end_to_end, 2.5 * one.mean_end_to_end * 0.8);
  EXPECT_GT(three.mean_end_to_end, one.mean_end_to_end);
}

TEST(StationChainTest, LoadAmplifiesHopPenalty) {
  // The paper's hypothesis: the 3-hop penalty grows with utilization.
  const double service = 0.05;
  const auto idle = run_station_chain(3, 0.1 / service, service, 40000, 6);
  const auto busy = run_station_chain(3, 0.8 / service, service, 40000, 6);
  EXPECT_GT(busy.mean_end_to_end, 2.0 * idle.mean_end_to_end);
}

TEST(StationChainTest, RejectsBadHops) {
  EXPECT_THROW(run_station_chain(0, 1.0, 1.0, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bh::sim
