// Tests for the observability layer: registry semantics, snapshot merging,
// the JSON/text exporters (golden output + byte-exact round trip), the
// bench-core suite store's v1 back-compat, and thread safety of concurrent
// scrapes (this binary also runs under TSan in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/bench_store.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace bh::obs {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("bh.test.a");
  a.inc(3);
  // Interleave creations; the original reference must stay valid and the
  // same name must resolve to the same metric.
  for (int i = 0; i < 100; ++i) reg.counter("bh.test.pad" + std::to_string(i));
  EXPECT_EQ(&a, &reg.counter("bh.test.a"));
  a.inc();
  EXPECT_EQ(reg.snapshot().counter("bh.test.a"), 4u);
}

TEST(MetricsRegistryTest, SnapshotCarriesAllThreeKinds) {
  MetricsRegistry reg;
  reg.counter("bh.test.c").inc(7);
  reg.gauge("bh.test.g").set(2.25);
  reg.histogram("bh.test.h").record(5.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("bh.test.c"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge("bh.test.g"), 2.25);
  ASSERT_NE(snap.histogram("bh.test.h"), nullptr);
  EXPECT_EQ(snap.histogram("bh.test.h")->count(), 1u);
  EXPECT_EQ(snap.counter("bh.test.absent", 42), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge("bh.test.absent", 1.5), 1.5);
  EXPECT_EQ(snap.histogram("bh.test.absent"), nullptr);
}

TEST(MetricsSnapshotTest, MergeAddsCountersKeepsMaxGaugesMergesHistograms) {
  MetricsRegistry a, b;
  a.counter("c.shared").inc(2);
  a.counter("c.only_a").inc(1);
  a.gauge("g.shared").set(3.0);
  a.histogram("h").record(1.0);
  b.counter("c.shared").inc(5);
  b.counter("c.only_b").inc(9);
  b.gauge("g.shared").set(7.0);
  b.gauge("g.only_b").set(0.5);
  b.histogram("h").record(2.0);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter("c.shared"), 7u);
  EXPECT_EQ(merged.counter("c.only_a"), 1u);
  EXPECT_EQ(merged.counter("c.only_b"), 9u);
  EXPECT_DOUBLE_EQ(merged.gauge("g.shared"), 7.0);
  EXPECT_DOUBLE_EQ(merged.gauge("g.only_b"), 0.5);
  ASSERT_NE(merged.histogram("h"), nullptr);
  EXPECT_EQ(merged.histogram("h")->count(), 2u);
  EXPECT_DOUBLE_EQ(merged.histogram("h")->max(), 2.0);
}

TEST(MetricsSnapshotTest, MergeIsOrderInsensitiveForTheseSemantics) {
  MetricsRegistry a, b;
  a.counter("c").inc(2);
  a.gauge("g").set(9.0);
  a.histogram("h").record(1.0);
  b.counter("c").inc(3);
  b.gauge("g").set(4.0);
  b.histogram("h").record(8.0);
  MetricsSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  MetricsSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(to_json(ab), to_json(ba));
}

TEST(MetricsExportTest, GoldenJson) {
  MetricsRegistry reg;
  reg.counter("bh.test.b").inc(2);
  reg.counter("bh.test.a").inc();
  reg.gauge("bh.test.g").set(1.5);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"bh.test.a\": 1,\n"
      "    \"bh.test.b\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"bh.test.g\": 1.5\n"
      "  },\n"
      "  \"histograms\": {}\n"
      "}";
  EXPECT_EQ(to_json(reg.snapshot()), expected);
}

TEST(MetricsExportTest, GoldenText) {
  MetricsRegistry reg;
  reg.counter("bh.test.a").inc();
  reg.gauge("bh.test.g").set(1.5);
  const std::string expected =
      "# TYPE bh_test_a counter\n"
      "bh_test_a 1\n"
      "# TYPE bh_test_g gauge\n"
      "bh_test_g 1.5\n";
  EXPECT_EQ(to_text(reg.snapshot()), expected);
}

TEST(MetricsExportTest, TextRendersHistogramSummary) {
  MetricsRegistry reg;
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("bh.test.lat_ms").record(double(i));
  }
  const std::string text = to_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE bh_test_lat_ms summary"), std::string::npos);
  EXPECT_NE(text.find("bh_test_lat_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("bh_test_lat_ms{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("bh_test_lat_ms_count 100"), std::string::npos);
  EXPECT_NE(text.find("bh_test_lat_ms_max 100"), std::string::npos);
}

TEST(MetricsExportTest, JsonRoundTripsByteExactly) {
  MetricsRegistry reg;
  Rng rng(7);
  reg.counter("bh.test.requests").inc(123456789);
  reg.gauge("bh.test.seconds").set(86400.125);
  reg.gauge("bh.test.awkward").set(0.1 + 0.2);  // not exactly 0.3
  for (int i = 0; i < 5000; ++i) {
    reg.histogram("bh.test.lat_ms").record(rng.lognormal(3.0, 1.5));
  }
  const std::string first = to_json(reg.snapshot());
  const auto parsed = parse_snapshot(first);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(to_json(*parsed), first);
  // And once more through the parser, for good measure.
  const auto reparsed = parse_snapshot(to_json(*parsed));
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(to_json(*reparsed), first);
}

TEST(MetricsExportTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_snapshot("").has_value());
  EXPECT_FALSE(parse_snapshot("{").has_value());
  EXPECT_FALSE(parse_snapshot("{\"bogus\": {\"a\": 1}}").has_value());
  EXPECT_FALSE(parse_snapshot("{\"counters\": {\"a\": }}").has_value());
}

TEST(MetricsExportTest, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  const auto parsed = parse_snapshot(to_json(empty));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
  EXPECT_EQ(to_json(*parsed), to_json(empty));
}

class BenchStoreTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "metrics_test_bench.json";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(BenchStoreTest, WriteThenLoadRoundTrips) {
  std::map<std::string, std::string> suites;
  suites["alpha"] = "{\"benchmarks\": [{\"name\": \"x\", \"iterations\": 1}]}";
  suites["beta"] = "{\"metrics\": {\n  \"counters\": {},\n  \"gauges\": {},\n"
                   "  \"histograms\": {}\n}}";
  write_suites(path_, suites);
  EXPECT_EQ(load_schema(path_).value_or(""), kBenchSchemaV2);
  EXPECT_EQ(load_suites(path_), suites);
}

TEST_F(BenchStoreTest, V1FilesStillParseAndUpgradeToV2) {
  // A file exactly as the old (v1) writer produced it.
  {
    std::ofstream f(path_);
    f << "{\n  \"schema\": \"bench-core-v1\",\n  \"suites\": {\n"
      << "    \"eventqueue\": {\"benchmarks\": [{\"name\": \"BM_Push\", "
      << "\"iterations\": 10, \"real_ns_per_op\": 5.000, "
      << "\"cpu_ns_per_op\": 4.000}]}\n  }\n}\n";
  }
  EXPECT_EQ(load_schema(path_).value_or(""), kBenchSchemaV1);
  auto suites = load_suites(path_);
  ASSERT_EQ(suites.size(), 1u);
  ASSERT_TRUE(suites.count("eventqueue"));
  EXPECT_NE(suites["eventqueue"].find("BM_Push"), std::string::npos);

  // A v2 writer merging a new suite preserves the v1 suite verbatim and
  // bumps the schema tag.
  const std::string v1_chunk = suites["eventqueue"];
  suites["hintcache"] = "{\"benchmarks\": []}";
  write_suites(path_, suites);
  EXPECT_EQ(load_schema(path_).value_or(""), kBenchSchemaV2);
  auto reloaded = load_suites(path_);
  ASSERT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded["eventqueue"], v1_chunk);
}

TEST_F(BenchStoreTest, MissingFileLoadsEmpty) {
  EXPECT_TRUE(load_suites(path_).empty());
  EXPECT_FALSE(load_schema(path_).has_value());
}

// Writers hammer all three metric kinds while scrapers snapshot and render
// concurrently; TSan (CI's thread-sanitizer job runs this binary) verifies
// the registry's locking discipline, and the final counts verify no lost
// updates.
TEST(MetricsConcurrencyTest, ConcurrentScrapesSeeConsistentData) {
  MetricsRegistry reg;
  constexpr int kWriters = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      Counter& c = reg.counter("bh.test.shared");
      Gauge& g = reg.gauge("bh.test.level");
      Histogram& h = reg.histogram("bh.test.lat_ms");
      for (int i = 0; i < kIncrements; ++i) {
        c.inc();
        g.add(1.0);
        if (i % 16 == 0) h.record(double(w + 1));
        // Creation races too: distinct names force map inserts.
        if (i % 4096 == 0) {
          reg.counter("bh.test.w" + std::to_string(w)).inc();
        }
      }
    });
  }
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 50; ++i) {
        const MetricsSnapshot snap = reg.snapshot();
        // Rendering must not race with writers either.
        const std::string json = to_json(snap);
        EXPECT_FALSE(json.empty());
      }
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter("bh.test.shared"),
            std::uint64_t(kWriters) * kIncrements);
  EXPECT_DOUBLE_EQ(final_snap.gauge("bh.test.level"),
                   double(kWriters) * kIncrements);
  ASSERT_NE(final_snap.histogram("bh.test.lat_ms"), nullptr);
  EXPECT_EQ(final_snap.histogram("bh.test.lat_ms")->count(),
            std::uint64_t(kWriters) * (kIncrements / 16));
}

}  // namespace
}  // namespace bh::obs
