// Tests for the front-end hint cache decorator and the disk-faulting hint
// lookup cost model.
#include <gtest/gtest.h>

#include "core/hint_system.h"
#include "hints/front_cache.h"
#include "net/cost_model.h"
#include "net/topology.h"
#include "sim/event_queue.h"

namespace bh::hints {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v}; }

TEST(FrontCacheTest, RejectsBadConstruction) {
  EXPECT_THROW(FrontedHintStore(nullptr, 16), std::invalid_argument);
  EXPECT_THROW(FrontedHintStore(make_hint_store(1_MB), 0),
               std::invalid_argument);
}

TEST(FrontCacheTest, ServesFromFrontAfterFirstLookup) {
  FrontedHintStore store(make_hint_store(1_MB), 1024);
  store.inner().insert(obj(5), MachineId{9});  // bypass the front
  EXPECT_EQ(store.lookup(obj(5))->value, 9u);  // fills the front
  EXPECT_EQ(store.front_hits(), 0u);
  EXPECT_EQ(store.lookup(obj(5))->value, 9u);  // front hit
  EXPECT_EQ(store.front_hits(), 1u);
}

TEST(FrontCacheTest, InsertPopulatesFront) {
  FrontedHintStore store(make_hint_store(1_MB), 1024);
  store.insert(obj(7), MachineId{3});
  EXPECT_EQ(store.lookup(obj(7))->value, 3u);
  EXPECT_EQ(store.front_hits(), 1u);
}

TEST(FrontCacheTest, EraseClearsBothLevels) {
  FrontedHintStore store(make_hint_store(1_MB), 1024);
  store.insert(obj(7), MachineId{3});
  EXPECT_TRUE(store.erase(obj(7)));
  EXPECT_EQ(store.lookup(obj(7)), std::nullopt);
}

TEST(FrontCacheTest, ConflictingSlotsEvictSilently) {
  FrontedHintStore store(make_hint_store(1_MB), 1);  // one front slot
  store.insert(obj(1), MachineId{1});
  store.insert(obj(2), MachineId{2});  // displaces obj 1 in the front
  // Both still resolve via the inner store.
  EXPECT_EQ(store.lookup(obj(1))->value, 1u);
  EXPECT_EQ(store.lookup(obj(2))->value, 2u);
}

TEST(FrontCacheTest, PoorLocalityStreamGetsPoorFrontHitRate) {
  // The paper's doubt: hint reads are filtered by the data cache, so a
  // sequential no-reuse stream should barely hit the front cache.
  FrontedHintStore store(make_hint_store(64_MB), 4096);
  for (std::uint64_t k = 1; k <= 100000; ++k) {
    store.inner().insert(obj(k), MachineId{k});
  }
  for (std::uint64_t k = 1; k <= 100000; ++k) {
    store.lookup(obj(k));  // each object read exactly once
  }
  EXPECT_LT(store.front_hit_ratio(), 0.01);
}

TEST(FrontCacheTest, EntryCountDelegatesToInner) {
  FrontedHintStore store(make_hint_store(1_MB), 16);
  store.insert(obj(1), MachineId{1});
  store.insert(obj(2), MachineId{2});
  EXPECT_EQ(store.entry_count(), 2u);
}

}  // namespace
}  // namespace bh::hints

namespace bh::core {
namespace {

trace::Record request(std::uint64_t object, ClientIndex client) {
  trace::Record r;
  r.type = trace::RecordType::kRequest;
  r.object = ObjectId{object};
  r.client = client;
  r.size = 8192;
  r.version = 1;
  return r;
}

TEST(HintDiskCostTest, FullyResidentTableCostsMicroseconds) {
  net::HierarchyTopology topo{16, 4, 4};
  auto cost = net::RousskovCostModel::min();
  sim::EventQueue queue;
  HintSystemConfig cfg;
  cfg.hint_bytes = 1_MB;
  cfg.hint_memory_bytes = 1_MB;
  HintSystem sys(topo, cost, cfg, queue);
  auto out = sys.handle_request(request(1, 0));
  EXPECT_NEAR(out.latency, 641 + 0.0043, 1e-6);
}

TEST(HintDiskCostTest, OverflowingTablePaysExpectedFaults) {
  net::HierarchyTopology topo{16, 4, 4};
  auto cost = net::RousskovCostModel::min();
  sim::EventQueue queue;
  HintSystemConfig cfg;
  cfg.hint_bytes = 4_MB;
  cfg.hint_memory_bytes = 1_MB;  // 75% of lookups fault in from disk
  HintSystem sys(topo, cost, cfg, queue);
  auto out = sys.handle_request(request(1, 0));
  EXPECT_NEAR(out.latency, 641 + 0.0043 + 0.75 * 10.8, 1e-6);
}

}  // namespace
}  // namespace bh::core
