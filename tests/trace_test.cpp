// Tests for workload presets, the synthetic generator, trace I/O, and stats.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "trace/generator.h"
#include "trace/stats.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

namespace bh::trace {
namespace {

WorkloadParams tiny() {
  WorkloadParams p = dec_workload();
  return p.scaled(1.0 / 512.0);
}

// --- workload presets ---

TEST(WorkloadTest, PresetsMatchTable4) {
  const auto d = dec_workload();
  EXPECT_EQ(d.num_clients, 16660u);
  EXPECT_EQ(d.num_requests, 22'100'000u);
  EXPECT_EQ(d.num_objects, 4'150'000u);
  EXPECT_DOUBLE_EQ(d.duration_days, 21);

  const auto b = berkeley_workload();
  EXPECT_EQ(b.num_clients, 8372u);
  EXPECT_EQ(b.num_requests, 8'800'000u);
  EXPECT_EQ(b.num_objects, 1'800'000u);
  EXPECT_DOUBLE_EQ(b.duration_days, 19);

  const auto p = prodigy_workload();
  EXPECT_EQ(p.num_clients, 35354u);
  EXPECT_EQ(p.num_requests, 4'200'000u);
  EXPECT_EQ(p.num_objects, 1'200'000u);
  EXPECT_DOUBLE_EQ(p.duration_days, 3);
}

TEST(WorkloadTest, ByNameAndUnknown) {
  EXPECT_EQ(workload_by_name("dec").name, "dec");
  EXPECT_EQ(workload_by_name("berkeley").name, "berkeley");
  EXPECT_EQ(workload_by_name("prodigy").name, "prodigy");
  EXPECT_THROW(workload_by_name("aol"), std::invalid_argument);
}

TEST(WorkloadTest, ScalingPreservesShape) {
  const auto d = dec_workload();
  const auto s = d.scaled(1.0 / 32.0);
  EXPECT_NEAR(static_cast<double>(s.num_requests),
              static_cast<double>(d.num_requests) / 32.0,
              static_cast<double>(d.num_requests) * 0.01);
  // The number of L1 groups survives scaling.
  EXPECT_EQ(s.num_l1(), d.num_l1());
  EXPECT_DOUBLE_EQ(s.duration_days, d.duration_days);
}

TEST(WorkloadTest, ValidationCatchesNonsense) {
  WorkloadParams p = dec_workload();
  p.num_objects = p.num_requests + 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = dec_workload();
  p.p_client_history = 0.9;
  p.p_l1_history = 0.9;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = dec_workload();
  p.duration_days = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_THROW(dec_workload().scaled(0.0), std::invalid_argument);
}

// --- generator ---

TEST(GeneratorTest, ExactHeadCounts) {
  const auto p = tiny();
  auto records = TraceGenerator(p).generate_all();
  const TraceStats s = compute_stats(records);
  EXPECT_EQ(s.requests, p.num_requests);
  EXPECT_EQ(s.distinct_objects, p.num_objects);
  EXPECT_LE(s.duration_days, p.duration_days + 0.01);
}

TEST(GeneratorTest, Deterministic) {
  const auto p = tiny();
  auto a = TraceGenerator(p).generate_all();
  auto b = TraceGenerator(p).generate_all();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].object, b[i].object);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto p = tiny();
  auto a = TraceGenerator(p).generate_all();
  p.seed ^= 0x1234;
  auto b = TraceGenerator(p).generate_all();
  std::size_t same = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) same += a[i].object == b[i].object;
  EXPECT_LT(same, n / 2);
}

TEST(GeneratorTest, TimeIsMonotonic) {
  auto records = TraceGenerator(tiny()).generate_all();
  for (std::size_t i = 1; i < records.size(); ++i) {
    ASSERT_LE(records[i - 1].time, records[i].time);
  }
}

TEST(GeneratorTest, VersionsAreConsistentWithModifies) {
  // Each request's version equals 1 + number of modifies for that object
  // emitted earlier in the stream.
  auto records = TraceGenerator(tiny()).generate_all();
  std::unordered_map<std::uint64_t, Version> version;
  for (const Record& r : records) {
    if (r.type == RecordType::kModify) {
      ASSERT_EQ(r.version, version.count(r.object.value)
                               ? version[r.object.value] + 1
                               : 2u);
      version[r.object.value] = r.version;
    } else {
      const Version expect =
          version.count(r.object.value) ? version[r.object.value] : 1u;
      ASSERT_EQ(r.version, expect);
      if (!version.count(r.object.value)) version[r.object.value] = 1;
    }
  }
}

TEST(GeneratorTest, ObjectSizeIsStablePerObject) {
  auto records = TraceGenerator(tiny()).generate_all();
  std::unordered_map<std::uint64_t, std::uint32_t> size;
  for (const Record& r : records) {
    auto [it, inserted] = size.emplace(r.object.value, r.size);
    if (!inserted) {
      ASSERT_EQ(it->second, r.size);
    }
  }
}

TEST(GeneratorTest, UncachableIsPerObjectProperty) {
  auto records = TraceGenerator(tiny()).generate_all();
  std::unordered_map<std::uint64_t, bool> unc;
  for (const Record& r : records) {
    if (r.type != RecordType::kRequest) continue;
    auto [it, inserted] = unc.emplace(r.object.value, r.uncachable);
    if (!inserted) {
      ASSERT_EQ(it->second, r.uncachable);
    }
  }
}

TEST(GeneratorTest, RatesNearTargets) {
  const auto p = tiny();
  auto records = TraceGenerator(p).generate_all();
  const TraceStats s = compute_stats(records);
  // Compulsory share is distinct/requests by construction.
  EXPECT_NEAR(s.first_reference_fraction,
              static_cast<double>(p.num_objects) / p.num_requests, 1e-9);
  EXPECT_NEAR(static_cast<double>(s.error_requests) / s.requests,
              p.error_request_fraction, 0.01);
  // Uncachable is a per-object property; popularity weighting moves the
  // request-level share around, so the band is loose.
  EXPECT_NEAR(static_cast<double>(s.uncachable_requests) / s.requests,
              p.uncachable_object_fraction, p.uncachable_object_fraction + 0.02);
}

TEST(GeneratorTest, ClientsInRange) {
  const auto p = tiny();
  auto records = TraceGenerator(p).generate_all();
  for (const Record& r : records) {
    if (r.type != RecordType::kRequest) continue;
    ASSERT_LT(r.client, p.num_clients);
  }
}

TEST(GeneratorTest, GenerateTwiceThrows) {
  TraceGenerator gen(tiny());
  gen.generate([](const Record&) {});
  EXPECT_THROW(gen.generate([](const Record&) {}), std::logic_error);
}

TEST(GeneratorTest, MeanObjectSizeNearTenKB) {
  // The paper cites ~10 KB average web objects; the lognormal parameters
  // must land in that neighbourhood.
  auto records = TraceGenerator(tiny()).generate_all();
  const TraceStats s = compute_stats(records);
  EXPECT_GT(s.mean_object_size, 5_KB);
  EXPECT_LT(s.mean_object_size, 20_KB);
}

// --- I/O ---

TEST(TraceIoTest, BinaryRoundTrip) {
  auto records = TraceGenerator(tiny().scaled(0.1)).generate_all();
  std::stringstream ss;
  write_binary(ss, records);
  auto back = read_binary(ss);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].object, records[i].object);
    EXPECT_EQ(back[i].client, records[i].client);
    EXPECT_EQ(back[i].size, records[i].size);
    EXPECT_EQ(back[i].version, records[i].version);
    EXPECT_EQ(back[i].type, records[i].type);
    EXPECT_EQ(back[i].uncachable, records[i].uncachable);
    EXPECT_EQ(back[i].error, records[i].error);
    EXPECT_NEAR(back[i].time, records[i].time, 1e-5);
  }
}

TEST(TraceIoTest, BinaryRejectsGarbage) {
  std::stringstream ss;
  ss << "definitely not a trace";
  EXPECT_THROW(read_binary(ss), std::runtime_error);
}

TEST(TraceIoTest, BinaryRejectsTruncation) {
  auto records = TraceGenerator(tiny().scaled(0.05)).generate_all();
  std::stringstream ss;
  write_binary(ss, records);
  std::string data = ss.str();
  data.resize(data.size() - 10);
  std::stringstream cut(data);
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(TraceIoTest, TextRoundTrip) {
  auto records = TraceGenerator(tiny().scaled(0.02)).generate_all();
  std::stringstream ss;
  write_text(ss, records);
  auto back = read_text(ss);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); i += 11) {
    EXPECT_EQ(back[i].object, records[i].object);
    EXPECT_EQ(back[i].type, records[i].type);
    EXPECT_EQ(back[i].uncachable, records[i].uncachable);
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  auto records = TraceGenerator(tiny().scaled(0.02)).generate_all();
  const std::string path = ::testing::TempDir() + "/bh_trace_test.bin";
  write_binary_file(path, records);
  auto back = read_binary_file(path);
  EXPECT_EQ(back.size(), records.size());
}

// --- stats ---

TEST(TraceStatsTest, CountsBasics) {
  std::vector<Record> rs;
  Record r;
  r.type = RecordType::kRequest;
  r.object = ObjectId{1};
  r.client = 7;
  r.size = 100;
  r.time = 10;
  rs.push_back(r);
  r.object = ObjectId{2};
  r.client = 8;
  r.uncachable = true;
  r.time = 20;
  rs.push_back(r);
  r.type = RecordType::kModify;
  r.time = 30;
  rs.push_back(r);

  const TraceStats s = compute_stats(rs);
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.modifies, 1u);
  EXPECT_EQ(s.distinct_objects, 2u);
  EXPECT_EQ(s.distinct_clients, 2u);
  EXPECT_EQ(s.uncachable_requests, 1u);
  EXPECT_DOUBLE_EQ(s.first_reference_fraction, 1.0);
}

}  // namespace
}  // namespace bh::trace
