// Parameterized sweeps: the same invariants checked across every workload
// preset, cost model, topology shape, and push policy.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/experiment.h"
#include "net/cost_model.h"
#include "net/topology.h"
#include "placement/placement.h"
#include "trace/generator.h"
#include "trace/stats.h"

namespace bh {
namespace {

// --- every workload preset satisfies the generator contract ---

class WorkloadSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSweep, GeneratorContractHolds) {
  const auto params = trace::workload_by_name(GetParam()).scaled(1.0 / 512.0);
  auto records = trace::TraceGenerator(params).generate_all();
  const auto s = trace::compute_stats(records);
  EXPECT_EQ(s.requests, params.num_requests);
  EXPECT_EQ(s.distinct_objects, params.num_objects);
  SimTime last = 0;
  for (const auto& r : records) {
    ASSERT_LE(last, r.time);
    last = r.time;
  }
}

TEST_P(WorkloadSweep, SharingRaisesHitRates) {
  // Figure 3's qualitative law for every trace: cumulative hit ratio grows
  // with the sharing level.
  core::ExperimentConfig cfg;
  cfg.workload = trace::workload_by_name(GetParam()).scaled(1.0 / 256.0);
  cfg.cost_model = "rousskov-min";
  cfg.system = core::SystemKind::kHierarchy;
  const auto r = core::run_experiment(cfg);
  const auto& c = r.levels;
  ASSERT_GT(c.requests, 0u);
  EXPECT_GT(c.hits[1], 0u);
  EXPECT_GT(c.hits[2], 0u);
  EXPECT_GT(c.hits[3], 0u);
}

TEST_P(WorkloadSweep, HintsNeverLoseToHierarchy) {
  const auto workload = trace::workload_by_name(GetParam()).scaled(1.0 / 256.0);
  const auto records = trace::TraceGenerator(workload).generate_all();
  core::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.cost_model = "testbed";
  cfg.system = core::SystemKind::kHierarchy;
  const auto hier = core::run_experiment_on(records, cfg);
  cfg.system = core::SystemKind::kHints;
  const auto hints = core::run_experiment_on(records, cfg);
  EXPECT_LT(hints.metrics.mean_response_ms(),
            hier.metrics.mean_response_ms());
}

INSTANTIATE_TEST_SUITE_P(Traces, WorkloadSweep,
                         ::testing::Values("dec", "berkeley", "prodigy"));

// --- every cost model satisfies the structural cost laws ---

class CostModelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CostModelSweep, StructuralLaws) {
  const auto model = net::make_cost_model(GetParam());
  for (std::uint64_t bytes : {1024u, 10240u, 1048576u}) {
    // Deeper hierarchy hits cost more.
    EXPECT_LE(model->hierarchy_hit(1, bytes), model->hierarchy_hit(2, bytes));
    EXPECT_LE(model->hierarchy_hit(2, bytes), model->hierarchy_hit(3, bytes));
    EXPECT_LE(model->hierarchy_hit(3, bytes), model->hierarchy_miss(bytes));
    // Farther direct accesses cost more.
    EXPECT_LE(model->direct_hit(1, bytes), model->direct_hit(2, bytes));
    EXPECT_LE(model->direct_hit(2, bytes), model->direct_hit(3, bytes));
    // The via-L1 wrap never makes a remote access cheaper than direct.
    for (int d = 2; d <= 3; ++d) {
      EXPECT_GE(model->via_l1_hit(d, bytes), model->direct_hit(d, bytes));
    }
    EXPECT_GE(model->via_l1_miss(bytes), model->direct_miss(bytes));
    // Going through the hierarchy is never cheaper than via-L1 direct.
    EXPECT_GE(model->hierarchy_miss(bytes), model->via_l1_miss(bytes));
    // Control round trips carry no payload: cheaper than a data access.
    for (int d = 1; d <= 3; ++d) {
      EXPECT_LT(model->control_rtt(d), model->direct_hit(d, bytes));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, CostModelSweep,
                         ::testing::Values("testbed", "rousskov-min",
                                           "rousskov-max"));

// --- accounting closes for every architecture ---

class SystemSweep : public ::testing::TestWithParam<core::SystemKind> {};

TEST_P(SystemSweep, SourceAccountingCloses) {
  core::ExperimentConfig cfg;
  cfg.workload = trace::dec_workload().scaled(1.0 / 512.0);
  cfg.cost_model = "rousskov-min";
  cfg.system = GetParam();
  const auto r = core::run_experiment(cfg);
  const auto& m = r.metrics;
  EXPECT_EQ(m.total_hits() + m.server_fetches, m.requests);
  EXPECT_GT(m.requests, 0u);
  EXPECT_GT(m.mean_response_ms(), 0.0);
  EXPECT_EQ(m.latency.count(), m.requests);
  // Quantiles bracket the mean sanely.
  EXPECT_LE(m.latency.quantile(0.0), m.mean_response_ms() * 1.05 + 1);
  EXPECT_GE(m.latency.quantile(1.0), m.mean_response_ms() * 0.95 - 1);
}

TEST_P(SystemSweep, RegistrySnapshotAgreesWithLegacyFields) {
  // Every architecture populates its run registry, and the public result
  // fields (the paper's numbers plus the new tail quantiles) are exactly the
  // registry's view of the run.
  core::ExperimentConfig cfg;
  cfg.workload = trace::dec_workload().scaled(1.0 / 512.0);
  cfg.cost_model = "rousskov-min";
  cfg.system = GetParam();
  const auto r = core::run_experiment(cfg);
  const auto& snap = r.snapshot;
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap.counter("bh.core.requests"), r.metrics.requests);
  EXPECT_EQ(snap.counter("bh.core.server_fetches"), r.metrics.server_fetches);
  EXPECT_EQ(snap.counter("bh.core.hit_bytes"), r.metrics.hit_bytes);
  EXPECT_DOUBLE_EQ(snap.gauge("bh.core.trace_seconds"), r.trace_seconds);

  const auto* hist = snap.histogram("bh.core.response_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), r.metrics.requests);
  EXPECT_DOUBLE_EQ(r.response_p50_ms, hist->quantile(0.5));
  EXPECT_DOUBLE_EQ(r.response_p90_ms, hist->quantile(0.9));
  EXPECT_DOUBLE_EQ(r.response_p99_ms, hist->quantile(0.99));
  EXPECT_LE(r.response_p50_ms, r.response_p90_ms);
  EXPECT_LE(r.response_p90_ms, r.response_p99_ms);
  // The figure means are untouched by the refactor: still computed from the
  // same accumulators the registry was populated from.
  EXPECT_DOUBLE_EQ(r.metrics.mean_response_ms(),
                   snap.gauge("bh.core.total_latency_ms") /
                       double(snap.counter("bh.core.requests")));
}

INSTANTIATE_TEST_SUITE_P(
    Systems, SystemSweep,
    ::testing::Values(core::SystemKind::kHierarchy,
                      core::SystemKind::kDirectory, core::SystemKind::kHints,
                      core::SystemKind::kIcp),
    [](const auto& info) {
      return std::string(core::system_kind_name(info.param));
    });

// --- every push policy helps (or at least never hurts) with infinite disk ---

class PushSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PushSweep, PushNeverHurtsWithInfiniteDisk) {
  const auto workload = trace::dec_workload().scaled(1.0 / 256.0);
  const auto records = trace::TraceGenerator(workload).generate_all();
  core::ExperimentConfig cfg;
  cfg.workload = workload;
  cfg.cost_model = "rousskov-max";
  cfg.system = core::SystemKind::kHints;
  const auto plain = core::run_experiment_on(records, cfg);
  cfg.hints.push_policy = GetParam();
  const auto pushed = core::run_experiment_on(records, cfg);
  // With no space pressure, extra copies can only shorten distances.
  EXPECT_LE(pushed.metrics.mean_response_ms(),
            plain.metrics.mean_response_ms() * 1.002);
  // Hit ratio is not reduced by pushing.
  EXPECT_GE(pushed.metrics.hit_ratio(), plain.metrics.hit_ratio() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PushSweep,
    ::testing::Values("update-push", "push-1", "push-half", "push-all",
                      "push-ideal", "adaptive-greedy"),
    [](const auto& info) {
      return placement::make_policy(info.param)->slug();
    });

// --- topology shapes ---

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(TopologySweep, LcaIsSymmetricAndBounded) {
  const auto [num_l1, fanout] = GetParam();
  const net::HierarchyTopology topo(num_l1, fanout, 16);
  for (NodeIndex a = 0; a < num_l1; ++a) {
    for (NodeIndex b = 0; b < num_l1; ++b) {
      const int d = topo.lca_level(a, b);
      ASSERT_EQ(d, topo.lca_level(b, a));
      ASSERT_GE(d, 1);
      ASSERT_LE(d, 3);
      ASSERT_EQ(d == 1, a == b);
    }
  }
}

TEST_P(TopologySweep, HintSystemWorksOnAnyShape) {
  const auto [num_l1, fanout] = GetParam();
  trace::WorkloadParams w = trace::dec_workload().scaled(1.0 / 1024.0);
  w.clients_per_l1 = std::max(1u, w.num_clients / num_l1);
  w.l1_per_l2 = fanout;
  core::ExperimentConfig cfg;
  cfg.workload = w;
  cfg.cost_model = "rousskov-min";
  cfg.system = core::SystemKind::kHints;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.metrics.requests, 0u);
  EXPECT_EQ(r.metrics.total_hits() + r.metrics.server_fetches,
            r.metrics.requests);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologySweep,
                         ::testing::Values(std::make_tuple(4u, 2u),
                                           std::make_tuple(16u, 4u),
                                           std::make_tuple(64u, 8u),
                                           std::make_tuple(30u, 7u)));

}  // namespace
}  // namespace bh
