// Tests for the baseline architectures: the traditional data hierarchy and
// the centralized directory.
#include <gtest/gtest.h>

#include "baseline/central_directory.h"
#include "baseline/data_hierarchy.h"
#include "net/cost_model.h"
#include "net/topology.h"

namespace bh::baseline {
namespace {

trace::Record req(std::uint64_t object, ClientIndex client,
                  std::uint32_t size = 8192, Version version = 1) {
  trace::Record r;
  r.type = trace::RecordType::kRequest;
  r.object = ObjectId{object};
  r.client = client;
  r.size = size;
  r.version = version;
  return r;
}

trace::Record modify(std::uint64_t object, Version version) {
  trace::Record r;
  r.type = trace::RecordType::kModify;
  r.object = ObjectId{object};
  r.version = version;
  return r;
}

struct HierFixture {
  net::HierarchyTopology topo{16, 4, 4};  // clients 0..63
  net::RousskovCostModel cost = net::RousskovCostModel::min();
  DataHierarchySystem sys{topo, cost, {}};
};

TEST(DataHierarchyTest, MissThenHitsDescendTheHierarchy) {
  HierFixture f;
  // client 0 -> L1 0. First access: full miss (981 ms at Rousskov-min).
  auto out = f.sys.handle_request(req(1, 0));
  EXPECT_EQ(out.source, core::Source::kServer);
  EXPECT_DOUBLE_EQ(out.latency, 981);

  // Same client again: L1 hit (163 ms).
  out = f.sys.handle_request(req(1, 0));
  EXPECT_EQ(out.source, core::Source::kL1);
  EXPECT_DOUBLE_EQ(out.latency, 163);

  // Client 4 -> L1 1 (same L2 subtree): L2 hit (271 ms).
  out = f.sys.handle_request(req(1, 4));
  EXPECT_EQ(out.source, core::Source::kL2);
  EXPECT_DOUBLE_EQ(out.latency, 271);

  // Client 32 -> L1 8 (different subtree): L3 hit (531 ms).
  out = f.sys.handle_request(req(1, 32));
  EXPECT_EQ(out.source, core::Source::kL3);
  EXPECT_DOUBLE_EQ(out.latency, 531);

  // And the L2/L3 hits left copies along the path: now both are L1 hits.
  EXPECT_EQ(f.sys.handle_request(req(1, 4)).source, core::Source::kL1);
  EXPECT_EQ(f.sys.handle_request(req(1, 32)).source, core::Source::kL1);
}

TEST(DataHierarchyTest, ModifyInvalidatesEveryLevel) {
  HierFixture f;
  f.sys.handle_request(req(1, 0));
  f.sys.handle_request(req(1, 32));
  f.sys.handle_modify(modify(1, 2));
  auto out = f.sys.handle_request(req(1, 0, 8192, 2));
  EXPECT_EQ(out.source, core::Source::kServer);
}

TEST(DataHierarchyTest, StaleCopyIsNotServed) {
  HierFixture f;
  f.sys.handle_request(req(1, 0, 8192, 1));
  // Version 2 requested without a modify record: the version guard refuses
  // the stale copy.
  auto out = f.sys.handle_request(req(1, 0, 8192, 2));
  EXPECT_EQ(out.source, core::Source::kServer);
}

TEST(DataHierarchyTest, LevelCountersTrackHitsAndBytes) {
  HierFixture f;
  f.sys.handle_request(req(1, 0, 1000));   // miss
  f.sys.handle_request(req(1, 0, 1000));   // L1 hit
  f.sys.handle_request(req(1, 4, 1000));   // L2 hit
  f.sys.handle_request(req(1, 32, 1000));  // L3 hit
  const auto& c = f.sys.level_counters();
  EXPECT_EQ(c.requests, 4u);
  EXPECT_EQ(c.hits[1], 1u);
  EXPECT_EQ(c.hits[2], 1u);
  EXPECT_EQ(c.hits[3], 1u);
  EXPECT_EQ(c.hit_bytes[1], 1000u);
  EXPECT_EQ(c.bytes, 4000u);
}

TEST(DataHierarchyTest, RecordingGateFreezesCounters) {
  HierFixture f;
  f.sys.set_recording(false);
  f.sys.handle_request(req(1, 0));
  EXPECT_EQ(f.sys.level_counters().requests, 0u);
  f.sys.set_recording(true);
  f.sys.handle_request(req(1, 0));
  EXPECT_EQ(f.sys.level_counters().requests, 1u);
  EXPECT_EQ(f.sys.level_counters().hits[1], 1u);
}

TEST(DataHierarchyTest, CapacityConstrainedL1EvictsButL3Retains) {
  net::HierarchyTopology topo{16, 4, 4};
  auto cost = net::RousskovCostModel::min();
  DataHierarchyConfig cfg;
  cfg.l1_capacity = 10000;  // tiny L1s
  DataHierarchySystem sys{topo, cost, cfg};
  // Fill L1 0 beyond capacity.
  for (std::uint64_t o = 1; o <= 5; ++o) {
    sys.handle_request(req(o, 0, 4000));
  }
  // Object 1 fell out of L1 but survives in L2/L3.
  auto out = sys.handle_request(req(1, 0, 4000));
  EXPECT_EQ(out.source, core::Source::kL2);
}

struct DirFixture {
  net::HierarchyTopology topo{16, 4, 4};
  net::RousskovCostModel cost = net::RousskovCostModel::min();
  CentralDirectorySystem sys{topo, cost, {}};
};

TEST(CentralDirectoryTest, MissPaysDirectoryQuery) {
  DirFixture f;
  auto out = f.sys.handle_request(req(1, 0));
  EXPECT_EQ(out.source, core::Source::kServer);
  // via-L1 miss (641) plus an intermediate-distance query round trip (120).
  EXPECT_DOUBLE_EQ(out.latency, 641 + 120);
}

TEST(CentralDirectoryTest, RemoteHitGoesDirect) {
  DirFixture f;
  f.sys.handle_request(req(1, 0));  // copy lands at L1 0
  // Client 4 -> L1 1 (same subtree): directory query + direct fetch at
  // intermediate distance: 120 + via_l1_hit(2) = 120 + 271.
  auto out = f.sys.handle_request(req(1, 4));
  EXPECT_EQ(out.source, core::Source::kRemoteL2);
  EXPECT_DOUBLE_EQ(out.latency, 120 + 271);

  // Client 32 -> L1 8 (other subtree): nearest holder is at root distance.
  out = f.sys.handle_request(req(1, 32));
  EXPECT_EQ(out.source, core::Source::kRemoteL3);
  EXPECT_DOUBLE_EQ(out.latency, 120 + 411);
}

TEST(CentralDirectoryTest, PrefersNearestHolder) {
  DirFixture f;
  f.sys.handle_request(req(1, 32));  // copy at L1 8 (group 2)
  f.sys.handle_request(req(1, 4));   // copy also at L1 1 (group 0)
  // Client 8 -> L1 2: nearest copy is L1 1 (same group), not L1 8.
  auto out = f.sys.handle_request(req(1, 8));
  EXPECT_EQ(out.source, core::Source::kRemoteL2);
}

TEST(CentralDirectoryTest, LocalHitSkipsDirectory) {
  DirFixture f;
  f.sys.handle_request(req(1, 0));
  auto out = f.sys.handle_request(req(1, 0));
  EXPECT_EQ(out.source, core::Source::kL1);
  EXPECT_DOUBLE_EQ(out.latency, 163);
}

TEST(CentralDirectoryTest, CountsEveryUpdate) {
  DirFixture f;
  f.sys.handle_request(req(1, 0));
  f.sys.handle_request(req(2, 0));
  f.sys.handle_request(req(1, 32));
  EXPECT_EQ(f.sys.directory_updates(), 3u);  // three inserts, no evictions
}

TEST(CentralDirectoryTest, ModifyPurgesDirectoryAndCaches) {
  DirFixture f;
  f.sys.handle_request(req(1, 0));
  f.sys.handle_request(req(1, 32));
  f.sys.handle_modify(modify(1, 2));
  auto out = f.sys.handle_request(req(1, 4, 8192, 2));
  EXPECT_EQ(out.source, core::Source::kServer);
}

TEST(CentralDirectoryTest, EvictionsUpdateDirectory) {
  net::HierarchyTopology topo{16, 4, 4};
  auto cost = net::RousskovCostModel::min();
  CentralDirectoryConfig cfg;
  cfg.l1_capacity = 10000;
  CentralDirectorySystem sys{topo, cost, cfg};
  for (std::uint64_t o = 1; o <= 5; ++o) sys.handle_request(req(o, 0, 4000));
  // Object 1 was evicted at L1 0; the directory must not hand it out.
  auto out = sys.handle_request(req(1, 4, 4000));
  EXPECT_EQ(out.source, core::Source::kServer);
}

}  // namespace
}  // namespace bh::baseline
