// Tests for the lock-striped sharded object cache and the striped hint
// front: single-shard equivalence with the plain LruCache, global-accounting
// invariants, and multithreaded hammering (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cache/lru_cache.h"
#include "cache/sharded_lru.h"
#include "common/rng.h"
#include "hints/hint_cache.h"

namespace bh::cache {
namespace {

std::string body_of(std::uint64_t id, std::size_t size) {
  return std::string(size, static_cast<char>('a' + id % 26));
}

// With one shard there is no partitioning at all: an identical operation
// trace against a plain LruCache must produce identical membership, byte
// accounting, and the exact same eviction sequence.
TEST(ShardedLruCacheTest, SingleShardMatchesPlainLruOnSameTrace) {
  constexpr std::uint64_t kCap = 4096;
  ShardedLruCache sharded(kCap, 1);
  LruCache plain(kCap);
  Rng rng(11);
  std::vector<std::uint64_t> sharded_evicted;
  std::vector<std::uint64_t> plain_evicted;

  for (int step = 0; step < 20000; ++step) {
    const ObjectId id{rng.next_below(64) + 1};
    const std::size_t size = 32 + rng.next_below(200);
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        sharded.insert(id, body_of(id.value, size), 1, false, true,
                       [&](const LruCache::Entry& e, BodyPtr body) {
                         // The victim's body is handed over intact.
                         ASSERT_EQ(body->size(), e.size);
                         ASSERT_EQ((*body)[0],
                                   static_cast<char>('a' + e.id.value % 26));
                         sharded_evicted.push_back(e.id.value);
                       });
        plain.insert(id, size, 1, false, [&](const LruCache::Entry& e) {
          plain_evicted.push_back(e.id.value);
        });
        break;
      case 2: {
        const auto body = sharded.find(id);
        ASSERT_EQ(body != nullptr, plain.find(id) != nullptr);
        if (body) {
          ASSERT_EQ((*body)[0], static_cast<char>('a' + id.value % 26));
        }
        break;
      }
      case 3:
        ASSERT_EQ(sharded.erase(id), plain.erase(id));
        break;
    }
    ASSERT_EQ(sharded.used_bytes(), plain.used_bytes());
    ASSERT_EQ(sharded.object_count(), plain.object_count());
  }
  EXPECT_EQ(sharded_evicted, plain_evicted);
  EXPECT_GT(sharded_evicted.size(), 0u) << "trace never exercised eviction";
}

TEST(ShardedLruCacheTest, GlobalAccountingMatchesShardSums) {
  ShardedLruCache c(1 << 20, 8);
  ASSERT_EQ(c.shard_count(), 8u);
  Rng rng(22);
  for (int step = 0; step < 30000; ++step) {
    const ObjectId id{rng.next_below(5000) + 1};
    if (rng.bernoulli(0.7)) {
      c.insert(id, body_of(id.value, 64 + rng.next_below(512)));
    } else {
      c.erase(id);
    }
  }
  std::uint64_t bytes = 0;
  std::size_t objects = 0;
  for (std::size_t s = 0; s < c.shard_count(); ++s) {
    bytes += c.shard_used_bytes(s);
    objects += c.shard_object_count(s);
  }
  EXPECT_EQ(c.used_bytes(), bytes);
  EXPECT_EQ(c.object_count(), objects);
  EXPECT_GT(c.evictions(), 0u) << "trace never exercised eviction";
}

TEST(ShardedLruCacheTest, InsertOutcomesFollowReplacePolicy) {
  ShardedLruCache c(kUnlimitedBytes, 4);
  const ObjectId id{42};
  EXPECT_EQ(c.insert(id, "aa"), ShardedLruCache::InsertOutcome::kInserted);
  EXPECT_EQ(c.insert(id, "bbb"), ShardedLruCache::InsertOutcome::kReplaced);
  EXPECT_EQ(c.used_bytes(), 3u);
  EXPECT_EQ(c.insert(id, "cccc", 1, false, /*replace_existing=*/false),
            ShardedLruCache::InsertOutcome::kKept);
  EXPECT_EQ(*c.find(id), "bbb");
  EXPECT_EQ(c.object_count(), 1u);
}

TEST(ShardedLruCacheTest, ObjectLargerThanShardBudgetIsRejected) {
  ShardedLruCache c(800, 4);  // 200 bytes of budget per shard
  ASSERT_EQ(c.insert(ObjectId{1}, std::string(100, 'x')),
            ShardedLruCache::InsertOutcome::kInserted);
  // Hopeless for any shard: rejected without evicting anything.
  EXPECT_EQ(c.insert(ObjectId{2}, std::string(500, 'y')),
            ShardedLruCache::InsertOutcome::kRejected);
  EXPECT_TRUE(c.contains(ObjectId{1}));
  EXPECT_EQ(c.object_count(), 1u);
  EXPECT_EQ(c.used_bytes(), 100u);
}

TEST(ShardedLruCacheTest, ConcurrentHammerKeepsAccountingConsistent) {
  ShardedLruCache c(2 << 20, 8);
  std::atomic<std::uint64_t> evictions{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &evictions, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 20000; ++i) {
        const ObjectId id{rng.next_below(4096) + 1};
        switch (rng.next_below(8)) {
          case 0:
            c.erase(id);
            break;
          case 1:
          case 2:
            c.insert(id, body_of(id.value, 64 + rng.next_below(256)), 1, false,
                     true, [&evictions](const LruCache::Entry&, BodyPtr) {
                       evictions.fetch_add(1, std::memory_order_relaxed);
                     });
            break;
          default:
            if (const auto body = c.find(id)) {
              // Bodies are keyed deterministically: a torn or misplaced read
              // would surface as the wrong fill character.
              EXPECT_FALSE(body->empty());
              EXPECT_EQ((*body)[0], static_cast<char>('a' + id.value % 26));
            }
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  std::uint64_t bytes = 0;
  std::size_t objects = 0;
  for (std::size_t s = 0; s < c.shard_count(); ++s) {
    bytes += c.shard_used_bytes(s);
    objects += c.shard_object_count(s);
  }
  EXPECT_EQ(c.used_bytes(), bytes);
  EXPECT_EQ(c.object_count(), objects);
  EXPECT_EQ(c.evictions(), evictions.load());
}

// The disk-demotion shape (satellite of the persistence work): every primary
// eviction re-enters a *different* cache from inside the callback, while the
// owning shard lock is still held. Global accounting is incremental — a
// victim's bytes leave the totals before the callback body runs — so a
// sampler thread must never observe the primary's total above capacity by
// more than one in-flight insert, and the final totals must match the
// per-shard sums exactly on both caches.
TEST(ShardedLruCacheTest, ReentrantDemotionHammerKeepsInvariants) {
  constexpr std::uint64_t kPrimaryCap = 1 << 20;
  constexpr std::uint64_t kMaxBody = 64 + 255;
  ShardedLruCache primary(kPrimaryCap, 8);
  ShardedLruCache secondary(4 << 20, 4);
  std::atomic<std::uint64_t> demoted{0};
  std::atomic<bool> done{false};

  std::thread sampler([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t bytes = primary.used_bytes();
      // Relaxed-atomic totals lag a mutation by at most the entries touched
      // by in-flight inserts (one per thread): far below one shard budget.
      ASSERT_LE(bytes, kPrimaryCap + 8 * kMaxBody);
      ASSERT_LE(primary.object_count(), 1u << 16);
    }
  });

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 15000; ++i) {
        const ObjectId id{rng.next_below(8192) + 1};
        primary.insert(
            id, body_of(id.value, 64 + rng.next_below(256)), 1, false, true,
            [&](const LruCache::Entry& e, BodyPtr body) {
              ASSERT_EQ(body->size(), e.size);
              demoted.fetch_add(1, std::memory_order_relaxed);
              // Re-entering another sharded cache under our shard lock is
              // the demotion pattern; ids are disjoint from the primary's
              // key space so the secondary never calls back into us.
              secondary.insert(ObjectId{e.id.value + (1u << 20)},
                               std::move(body));
            });
        if (rng.bernoulli(0.1)) primary.erase(id);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  done.store(true);
  sampler.join();

  for (const ShardedLruCache* c : {&primary, &secondary}) {
    std::uint64_t bytes = 0;
    std::size_t objects = 0;
    for (std::size_t s = 0; s < c->shard_count(); ++s) {
      bytes += c->shard_used_bytes(s);
      objects += c->shard_object_count(s);
    }
    EXPECT_EQ(c->used_bytes(), bytes);
    EXPECT_EQ(c->object_count(), objects);
  }
  EXPECT_GT(demoted.load(), 0u) << "trace never exercised demotion";
  EXPECT_EQ(primary.evictions(), demoted.load());
}

TEST(StripedHintStoreTest, RoundTripAndStripeClamp) {
  hints::StripedHintStore s(1 << 20, 8);
  EXPECT_EQ(s.stripe_count(), 8u);
  s.insert(ObjectId{1}, MachineId{7});
  const auto hit = s.lookup(ObjectId{1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 7u);
  EXPECT_EQ(s.entry_count(), 1u);
  EXPECT_TRUE(s.erase(ObjectId{1}));
  EXPECT_FALSE(s.lookup(ObjectId{1}).has_value());
  EXPECT_FALSE(s.erase(ObjectId{1}));

  hints::StripedHintStore one(1 << 20, 0);  // stripes clamp to at least 1
  EXPECT_EQ(one.stripe_count(), 1u);
}

TEST(StripedHintStoreTest, ConcurrentHammerStaysCoherent) {
  const auto store = hints::make_striped_hint_store(1 << 20, 8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(2000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 20000; ++i) {
        const ObjectId id{rng.next_below(2048) + 1};
        switch (rng.next_below(4)) {
          case 0:
            // Locations are a pure function of the id, so any concurrent
            // lookup observing a hint must observe the right one.
            store->insert(id, MachineId{id.value * 3 + 1});
            break;
          case 1:
            store->erase(id);
            break;
          default:
            if (const auto hit = store->lookup(id)) {
              EXPECT_EQ(hit->value, id.value * 3 + 1);
            }
            break;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(store->entry_count(), 2048u);
}

}  // namespace
}  // namespace bh::cache
