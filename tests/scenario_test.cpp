// Scenario-lab tests: open-loop coordinated-omission safety, topology
// wiring, loud-failure guarantees of the multi-process cluster, and an
// 8-proxy failure_storm integration run asserting the quarantine →
// re-probe → recovery arc end to end.
//
// This binary spawns real daemon processes by re-exec'ing itself
// (lab/cluster.h), so main() must dispatch through maybe_run_daemon()
// before gtest sees argv.
#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lab/cluster.h"
#include "lab/openloop.h"
#include "lab/scenarios.h"

namespace bh::lab {
namespace {

// A server stall must charge queueing delay to every request scheduled
// behind it. Service takes 20 ms per call against a 200/s intended rate
// (5 ms spacing), so the driver falls ~4x behind: a closed-loop driver
// would report ~20 ms per sample, while the CO-safe measurement from the
// *scheduled* send time must show the growing queue in the tail.
TEST(OpenLoop, ChargesQueueingDelayFromScheduledSendTime) {
  OpenLoopOptions opts;
  opts.clients = 1;
  opts.rate_per_client = 200.0;
  opts.duration_seconds = 0.25;  // 50 intended arrivals
  const OpenLoopResult r = run_open_loop(opts, [](int, std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return true;
  });
  // Every intended request was issued even though the run fell behind.
  EXPECT_GE(r.scheduled, 45u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_GT(r.elapsed_seconds, opts.duration_seconds);
  // Per-call service time is 20 ms; only coordinated omission could make
  // the tail look like that. The last arrival waits behind ~40 queued
  // predecessors, so the true p99 is hundreds of milliseconds.
  EXPECT_GT(r.p99_ms(), 250.0);
  EXPECT_GT(r.p50_ms(), 100.0);
}

// Failed calls stay in the population at no less than the penalty latency —
// dropping them would be omission by another name.
TEST(OpenLoop, FailuresStayInPopulationAtPenaltyLatency) {
  OpenLoopOptions opts;
  opts.clients = 2;
  opts.rate_per_client = 100.0;
  opts.duration_seconds = 0.2;
  opts.failure_penalty_ms = 123.0;
  const OpenLoopResult r =
      run_open_loop(opts, [](int, std::uint64_t) { return false; });
  EXPECT_GT(r.scheduled, 0u);
  EXPECT_EQ(r.failures, r.scheduled);
  EXPECT_DOUBLE_EQ(r.failure_ratio(), 1.0);
  EXPECT_GE(r.p50_ms(), 123.0 * 0.9);  // histogram bucketing tolerance
}

TEST(Topology, RingIsOneCycle) {
  const auto edges = topology_edges(Topology::kRing, 5);
  ASSERT_EQ(edges.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(edges[static_cast<std::size_t>(i)],
              (std::pair<int, int>{i, (i + 1) % 5}));
  }
}

TEST(Topology, HierarchyLinksEveryChildToItsParentBothWays) {
  const int n = 21;  // full fanout-4 tree: 1 + 4 + 16
  const auto edges = topology_edges(Topology::kHierarchy, n);
  const std::set<std::pair<int, int>> set(edges.begin(), edges.end());
  EXPECT_EQ(set.size(), edges.size()) << "duplicate edges";
  EXPECT_EQ(edges.size(), 2u * (n - 1));
  for (int child = 1; child < n; ++child) {
    const int parent = (child - 1) / 4;
    EXPECT_TRUE(set.count({child, parent}));
    EXPECT_TRUE(set.count({parent, child}));
  }
}

TEST(Topology, MeshIsSymmetricSelfFreeAndConnected) {
  const int n = 16;
  const auto edges = topology_edges(Topology::kMesh, n);
  const std::set<std::pair<int, int>> set(edges.begin(), edges.end());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& [a, b] : edges) {
    EXPECT_NE(a, b);
    EXPECT_TRUE(a >= 0 && a < n && b >= 0 && b < n);
    EXPECT_TRUE(set.count({b, a})) << a << "->" << b << " not symmetric";
    adj[static_cast<std::size_t>(a)].push_back(b);
  }
  // BFS: every node reachable from 0 (hints can spread cluster-wide).
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> queue{0};
  seen[0] = true;
  while (!queue.empty()) {
    const int v = queue.back();
    queue.pop_back();
    for (const int w : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        queue.push_back(w);
      }
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }));
}

// A cluster whose daemon binary cannot exec must fail with a thrown error
// well inside the ready timeout — the bug class this lab exists to catch is
// the silent hang at scale.
TEST(Cluster, StartFailsLoudlyWhenDaemonCannotLaunch) {
  ClusterOptions opts;
  opts.proxies = 2;
  opts.exe = "/nonexistent/bh-scenario-daemon";
  opts.ready_timeout_seconds = 5.0;
  Cluster cluster(opts);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(cluster.start(), std::runtime_error);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed.count(), opts.ready_timeout_seconds + 5.0);
}

TEST(Scenario, UnknownNameThrows) {
  ScenarioOptions opts;
  EXPECT_THROW(run_scenario("not_a_scenario", opts), std::runtime_error);
}

// 8 real proxy processes through the full failure_storm arc: healthy
// baseline, correlated SIGKILL of 2 daemons, quarantines under load,
// rebirth on the old ports, re-probe admission, and warm-hit-ratio
// recovery. All of those are structural (hard) checks inside the scenario;
// this test additionally pins the counters the checks were computed from.
TEST(Scenario, FailureStormQuarantinesAndRecoversAtEightProxies) {
  ScenarioOptions opts;
  opts.cluster.proxies = 8;
  opts.clients = 2;
  opts.rate_per_client = 30.0;
  opts.duration_seconds = 1.0;
  opts.objects = 64;
  const ScenarioResult r = run_scenario("failure_storm", opts);

  for (const SloCheck& c : r.checks) {
    if (c.hard) {
      EXPECT_TRUE(c.ok) << c.name << ": " << c.detail;
    }
  }
  EXPECT_TRUE(r.passed());

  const std::string p = "bh.scenario.failure_storm";
  EXPECT_GE(r.metrics.counter(p + ".phase_b.peer_failures"), 1u);
  EXPECT_GE(r.metrics.counter(p + ".phase_b.quarantines"), 1u);
  // The full intended population of every phase is in the latency record.
  EXPECT_GE(r.metrics.counter(p + ".requests"),
            r.metrics.counter(p + ".phase_a.local_hits"));
  const auto killed = r.metrics.gauges.find(p + ".killed");
  ASSERT_NE(killed, r.metrics.gauges.end());
  EXPECT_EQ(killed->second, 2.0);  // max(1, 8/4)
  // Recovery: phase C's hit ratio came back to at least half of phase A's.
  const auto hit_a = r.metrics.gauges.find(p + ".phase_a.hit_ratio");
  const auto hit_c = r.metrics.gauges.find(p + ".phase_c.hit_ratio");
  ASSERT_NE(hit_a, r.metrics.gauges.end());
  ASSERT_NE(hit_c, r.metrics.gauges.end());
  EXPECT_GE(hit_c->second, 0.5 * hit_a->second);
}

}  // namespace
}  // namespace bh::lab

int main(int argc, char** argv) {
  bh::lab::maybe_run_daemon(argc, argv);  // never returns in daemon processes
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
