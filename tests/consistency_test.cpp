// Tests for the consistency-policy simulator.
#include <gtest/gtest.h>

#include "cache/consistency_sim.h"

namespace bh::cache {
namespace {

trace::Record req(std::uint64_t object, double time, Version version = 1,
                  std::uint32_t size = 1000) {
  trace::Record r;
  r.type = trace::RecordType::kRequest;
  r.object = ObjectId{object};
  r.time = time;
  r.version = version;
  r.size = size;
  return r;
}

trace::Record modify(std::uint64_t object, double time, Version version) {
  trace::Record r;
  r.type = trace::RecordType::kModify;
  r.object = ObjectId{object};
  r.time = time;
  r.version = version;
  r.size = 1000;
  return r;
}

ConsistencyConfig config(ConsistencyMode mode) {
  ConsistencyConfig c;
  c.mode = mode;
  c.ttl_seconds = 100;
  c.lease_seconds = 100;
  return c;
}

TEST(ConsistencyTest, StrongNeverServesStale) {
  ConsistencySimulator sim(config(ConsistencyMode::kStrongInvalidation));
  sim.step(req(1, 0));
  sim.step(req(1, 10));
  sim.step(modify(1, 20, 2));
  sim.step(req(1, 30, 2));
  const auto& s = sim.stats();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.true_hits, 1u);
  EXPECT_EQ(s.stale_hits, 0u);
  EXPECT_EQ(s.fetches, 2u);
}

TEST(ConsistencyTest, TtlServesStaleWithinWindow) {
  ConsistencySimulator sim(config(ConsistencyMode::kTtl));
  sim.step(req(1, 0));
  sim.step(modify(1, 10, 2));
  sim.step(req(1, 20, 2));  // stale copy still within TTL: served stale
  const auto& s = sim.stats();
  EXPECT_EQ(s.stale_hits, 1u);
  EXPECT_EQ(s.fetches, 1u);
}

TEST(ConsistencyTest, TtlDiscardsGoodCopiesAfterExpiry) {
  ConsistencySimulator sim(config(ConsistencyMode::kTtl));
  sim.step(req(1, 0));
  sim.step(req(1, 150));  // unchanged but past the 100 s TTL
  const auto& s = sim.stats();
  EXPECT_EQ(s.good_discards, 1u);
  EXPECT_EQ(s.fetches, 2u);
  EXPECT_EQ(s.true_hits, 0u);
}

TEST(ConsistencyTest, PollValidatesEveryHit) {
  ConsistencySimulator sim(config(ConsistencyMode::kPollEveryAccess));
  sim.step(req(1, 0));
  sim.step(req(1, 10));
  sim.step(req(1, 20));
  sim.step(modify(1, 25, 2));
  sim.step(req(1, 30, 2));  // validation detects the change, refetch
  const auto& s = sim.stats();
  EXPECT_EQ(s.validations, 3u);
  EXPECT_EQ(s.useless_validations, 2u);
  EXPECT_EQ(s.true_hits, 2u);
  EXPECT_EQ(s.stale_hits, 0u);
  EXPECT_EQ(s.fetches, 2u);
}

TEST(ConsistencyTest, LeaseInvalidatesWhileHeld) {
  ConsistencySimulator sim(config(ConsistencyMode::kLease));
  sim.step(req(1, 0));           // lease until t=100
  sim.step(modify(1, 50, 2));    // within lease: server callback invalidates
  sim.step(req(1, 60, 2));       // miss -> fresh fetch, no staleness
  const auto& s = sim.stats();
  EXPECT_EQ(s.stale_hits, 0u);
  EXPECT_EQ(s.fetches, 2u);
}

TEST(ConsistencyTest, ExpiredLeaseRevalidates) {
  ConsistencySimulator sim(config(ConsistencyMode::kLease));
  sim.step(req(1, 0));            // lease until 100
  sim.step(modify(1, 150, 2));    // lease expired: no callback, stale copy stays
  sim.step(req(1, 200, 2));       // revalidation catches it
  const auto& s = sim.stats();
  EXPECT_EQ(s.validations, 1u);
  EXPECT_EQ(s.stale_hits, 0u);
  EXPECT_EQ(s.fetches, 2u);
}

TEST(ConsistencyTest, FreshHitWithinLeaseIsFree) {
  ConsistencySimulator sim(config(ConsistencyMode::kLease));
  sim.step(req(1, 0));
  sim.step(req(1, 50));  // within lease: no validation round trip
  const auto& s = sim.stats();
  EXPECT_EQ(s.validations, 0u);
  EXPECT_EQ(s.true_hits, 1u);
}

TEST(ConsistencyTest, UncachableAndErrorAreIgnored) {
  ConsistencySimulator sim(config(ConsistencyMode::kStrongInvalidation));
  trace::Record r = req(1, 0);
  r.uncachable = true;
  sim.step(r);
  r.uncachable = false;
  r.error = true;
  sim.step(r);
  EXPECT_EQ(sim.stats().requests, 0u);
}

// All four policies replaying the same stream agree on one invariant: the
// apparent hit ratio decomposes into true + stale, and strong/poll/lease
// never serve stale data.
class ConsistencyPropertyTest
    : public ::testing::TestWithParam<ConsistencyMode> {};

TEST_P(ConsistencyPropertyTest, InvariantsHoldOnRandomStream) {
  ConsistencySimulator sim(config(GetParam()));
  std::uint64_t seed = 4242;
  double t = 0;
  std::vector<Version> versions(50, 1);
  for (int i = 0; i < 20000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    t += double(seed % 97) / 10.0;
    const std::uint64_t obj = seed % 50 + 1;
    if (seed % 13 == 0) {
      sim.step(modify(obj, t, ++versions[obj - 1]));
    } else {
      sim.step(req(obj, t, versions[obj - 1]));
    }
  }
  const auto& s = sim.stats();
  EXPECT_EQ(s.true_hits + s.stale_hits + s.fetches, s.requests);
  EXPECT_LE(s.useless_validations, s.validations);
  if (GetParam() != ConsistencyMode::kTtl) {
    // Only TTL can serve stale data in this model; leases rely on the
    // server's callback while held and revalidate after expiry.
    EXPECT_EQ(s.stale_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConsistencyPropertyTest,
    ::testing::Values(ConsistencyMode::kStrongInvalidation,
                      ConsistencyMode::kTtl,
                      ConsistencyMode::kPollEveryAccess,
                      ConsistencyMode::kLease),
    [](const auto& info) {
      return std::string(consistency_mode_name(info.param)) == "ttl"
                 ? "Ttl"
                 : std::string(consistency_mode_name(info.param)) ==
                           "strong-invalidation"
                       ? "Strong"
                       : std::string(consistency_mode_name(info.param)) ==
                                 "poll-every-access"
                             ? "Poll"
                             : "Lease";
    });

}  // namespace
}  // namespace bh::cache
