// Tests for the hint-cache data structure and the metadata hierarchy.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <string>

#include "common/fs_util.h"
#include "hints/hint_cache.h"
#include "hints/metadata_hierarchy.h"
#include "net/topology.h"
#include "sim/event_queue.h"

namespace bh::hints {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v}; }
MachineId loc(std::uint64_t v) { return MachineId{v}; }

// --- machine id packing ---

TEST(MachineIdTest, RoundTrip) {
  for (NodeIndex n : {0u, 1u, 63u, 1000u}) {
    EXPECT_EQ(node_of_machine(machine_of_node(n)), n);
  }
}

TEST(MachineIdTest, CarriesPort3128) {
  EXPECT_EQ(machine_of_node(5).value & 0xFFFFFFFFu, 3128u);
}

// --- associative hint cache ---

TEST(HintCacheTest, RecordIsSixteenBytes) {
  EXPECT_EQ(sizeof(HintRecord), 16u);
}

TEST(HintCacheTest, CapacityRoundsToSets) {
  AssociativeHintCache c(1000);  // 1000/64 = 15 sets
  EXPECT_EQ(c.capacity_entries(), 15u * 4u);
  EXPECT_EQ(c.capacity_bytes(), 15u * 64u);
  AssociativeHintCache tiny(1);  // at least one set
  EXPECT_EQ(tiny.capacity_entries(), 4u);
}

TEST(HintCacheTest, InsertLookupErase) {
  AssociativeHintCache c(1_MB);
  EXPECT_EQ(c.lookup(obj(42)), std::nullopt);
  c.insert(obj(42), loc(7));
  ASSERT_TRUE(c.lookup(obj(42)).has_value());
  EXPECT_EQ(c.lookup(obj(42))->value, 7u);
  EXPECT_EQ(c.entry_count(), 1u);
  EXPECT_TRUE(c.erase(obj(42)));
  EXPECT_EQ(c.lookup(obj(42)), std::nullopt);
  EXPECT_FALSE(c.erase(obj(42)));
  EXPECT_EQ(c.entry_count(), 0u);
}

TEST(HintCacheTest, InsertReplacesLocationInPlace) {
  AssociativeHintCache c(1_MB);
  c.insert(obj(42), loc(7));
  c.insert(obj(42), loc(9));
  EXPECT_EQ(c.lookup(obj(42))->value, 9u);
  EXPECT_EQ(c.entry_count(), 1u);
}

TEST(HintCacheTest, InvalidKeyIsIgnored) {
  AssociativeHintCache c(1_MB);
  c.insert(obj(kInvalidHintKey), loc(1));
  EXPECT_EQ(c.entry_count(), 0u);
  EXPECT_EQ(c.lookup(obj(kInvalidHintKey)), std::nullopt);
}

TEST(HintCacheTest, SetConflictEvictsLruEntry) {
  // A single-set cache: the fifth distinct key must displace the least
  // recently touched of the four.
  AssociativeHintCache c(64);  // one 4-way set
  for (std::uint64_t k = 1; k <= 4; ++k) c.insert(obj(k), loc(k));
  EXPECT_EQ(c.entry_count(), 4u);
  c.lookup(obj(1));  // touch 1; LRU is now 2
  c.insert(obj(5), loc(5));
  EXPECT_EQ(c.entry_count(), 4u);
  EXPECT_TRUE(c.lookup(obj(1)).has_value());
  EXPECT_FALSE(c.lookup(obj(2)).has_value());
  EXPECT_TRUE(c.lookup(obj(5)).has_value());
  EXPECT_EQ(c.stats().conflict_evictions, 1u);
}

TEST(HintCacheTest, StatsCountLookupsAndHits) {
  AssociativeHintCache c(1_MB);
  c.insert(obj(1), loc(1));
  c.lookup(obj(1));
  c.lookup(obj(2));
  EXPECT_EQ(c.stats().lookups, 2u);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().inserts, 1u);
}

TEST(HintCacheTest, ManyEntriesSurviveInLargeCache) {
  AssociativeHintCache c(10_MB);  // 655k entries
  const std::uint64_t n = 100000;
  for (std::uint64_t k = 1; k <= n; ++k) c.insert(obj(k * 977 + 1), loc(k));
  std::uint64_t present = 0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    present += c.lookup(obj(k * 977 + 1)).has_value();
  }
  // With 15% load factor, only a tiny fraction can be conflict casualties.
  EXPECT_GT(present, n * 97 / 100);
}

TEST(HintCacheTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bh_hints_test.img";
  AssociativeHintCache c(4096);
  for (std::uint64_t k = 1; k <= 50; ++k) c.insert(obj(k), loc(k * 3));
  c.save(path);
  AssociativeHintCache back = AssociativeHintCache::load(path);
  EXPECT_EQ(back.capacity_entries(), c.capacity_entries());
  EXPECT_EQ(back.entry_count(), c.entry_count());
  for (std::uint64_t k = 1; k <= 50; ++k) {
    auto h = back.lookup(obj(k));
    ASSERT_TRUE(h.has_value()) << k;
    EXPECT_EQ(h->value, k * 3);
  }
}

TEST(HintCacheTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/bh_hints_garbage.img";
  {
    std::ofstream f(path, std::ios::binary);
    f << "junk";
  }
  EXPECT_THROW(AssociativeHintCache::load(path), std::runtime_error);
}

// Regression: the old image format dumped only the record array, losing the
// per-slot recency that picks conflict-eviction victims. After a restore,
// the first insert into a full set must evict the true least-recently-used
// record, not whichever slot the scan happens to reach first.
TEST(HintCacheTest, SaveLoadPreservesEvictionRecency) {
  const std::string path = ::testing::TempDir() + "/bh_hints_recency.img";
  AssociativeHintCache c(64);  // exactly one 4-way set
  ASSERT_EQ(c.capacity_entries(), 4u);
  // Fill the set in order a, b, c, d, then touch a — b is now the LRU.
  for (std::uint64_t k = 1; k <= 4; ++k) c.insert(obj(k), loc(k * 10));
  ASSERT_TRUE(c.lookup(obj(1)).has_value());

  c.save(path);
  AssociativeHintCache back = AssociativeHintCache::load(path);

  back.insert(obj(5), loc(50));  // full set: must displace b (= obj 2)
  EXPECT_FALSE(back.lookup(obj(2)).has_value()) << "true LRU survived";
  for (std::uint64_t k : {1u, 3u, 4u, 5u}) {
    EXPECT_TRUE(back.lookup(obj(k)).has_value()) << "lost obj " << k;
  }
}

TEST(HintCacheTest, LoadRejectsTruncatedImage) {
  const std::string full = ::testing::TempDir() + "/bh_hints_full.img";
  const std::string cut = ::testing::TempDir() + "/bh_hints_cut.img";
  AssociativeHintCache c(4096);
  for (std::uint64_t k = 1; k <= 20; ++k) c.insert(obj(k), loc(k));
  c.save(full);

  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(AssociativeHintCache::load(cut), std::runtime_error);
}

TEST(HintCacheTest, LoadRejectsVersionMismatch) {
  const std::string path = ::testing::TempDir() + "/bh_hints_version.img";
  AssociativeHintCache c(4096);
  c.insert(obj(1), loc(2));
  c.save(path);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[8] = 99;  // the version field follows the 8-byte magic
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(AssociativeHintCache::load(path), std::runtime_error);
}

// --- crash-atomic save / granular load errors ---

std::string load_error(const std::string& path) {
  try {
    AssociativeHintCache::load(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// A crash mid-save (simulated by the fault hook: the write stops partway and
// the rename never happens) must leave the previous image byte-identical and
// loadable — the torn-write bug this save path used to have.
TEST(HintCacheTest, SaveIsCrashAtomic) {
  const std::string path = ::testing::TempDir() + "/bh_hints_atomic.img";
  AssociativeHintCache c(4096);
  for (std::uint64_t k = 1; k <= 20; ++k) c.insert(obj(k), loc(k * 3));
  c.save(path);
  const std::string before = read_raw(path);

  for (std::uint64_t k = 21; k <= 40; ++k) c.insert(obj(k), loc(k * 3));
  set_atomic_write_fault([&](const std::string& target) {
    return target == path ? std::optional<std::size_t>(before.size() / 2)
                          : std::nullopt;
  });
  EXPECT_THROW(c.save(path), std::runtime_error);
  set_atomic_write_fault(nullptr);

  EXPECT_EQ(read_raw(path), before) << "interrupted save damaged the image";
  AssociativeHintCache back = AssociativeHintCache::load(path);
  EXPECT_EQ(back.entry_count(), 20u);

  // With the hook gone the same save completes and replaces the image whole.
  c.save(path);
  EXPECT_EQ(AssociativeHintCache::load(path).entry_count(), 40u);
}

TEST(HintCacheTest, LoadFailureModesAreDistinct) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/bh_hints_modes.img";
  AssociativeHintCache c(4096);
  for (std::uint64_t k = 1; k <= 20; ++k) c.insert(obj(k), loc(k));
  c.save(good);
  const std::string bytes = read_raw(good);

  EXPECT_NE(load_error(dir + "/bh_hints_missing.img").find("cannot open"),
            std::string::npos);

  const std::string header_cut = dir + "/bh_hints_header_cut.img";
  write_raw(header_cut, bytes.substr(0, 10));
  EXPECT_NE(load_error(header_cut).find("truncated header"),
            std::string::npos);

  const std::string foreign = dir + "/bh_hints_foreign.img";
  write_raw(foreign, std::string(4096, 'z'));
  EXPECT_NE(load_error(foreign).find("not a hint image"), std::string::npos);

  const std::string version = dir + "/bh_hints_vers.img";
  std::string v = bytes;
  v[8] = 99;  // version field follows the 8-byte magic
  write_raw(version, v);
  EXPECT_NE(load_error(version).find("version mismatch"), std::string::npos);

  const std::string record_cut = dir + "/bh_hints_record_cut.img";
  write_raw(record_cut, bytes.substr(0, 32 + 100));  // header + partial records
  EXPECT_NE(load_error(record_cut).find("truncated record region"),
            std::string::npos);

  const std::string recency_cut = dir + "/bh_hints_recency_cut.img";
  write_raw(recency_cut, bytes.substr(0, bytes.size() - 8));
  EXPECT_NE(load_error(recency_cut).find("truncated recency region"),
            std::string::npos);
}

// restore() must have the strong guarantee: a failed restore leaves the
// in-memory cache exactly as it was (the old in-place-parse could not).
TEST(HintCacheTest, RestoreLeavesCacheUntouchedOnFailure) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/bh_hints_restore_good.img";
  const std::string bad = dir + "/bh_hints_restore_bad.img";

  AssociativeHintCache saved(4096);
  for (std::uint64_t k = 1; k <= 10; ++k) saved.insert(obj(k), loc(k * 7));
  saved.save(good);
  write_raw(bad, read_raw(good).substr(0, 40));  // truncated mid-records

  AssociativeHintCache live(4096);
  for (std::uint64_t k = 100; k < 130; ++k) live.insert(obj(k), loc(k));
  EXPECT_THROW(live.restore(bad), std::runtime_error);
  EXPECT_EQ(live.entry_count(), 30u);
  for (std::uint64_t k = 100; k < 130; ++k) {
    EXPECT_TRUE(live.lookup(obj(k)).has_value()) << k;
  }

  live.restore(good);
  EXPECT_EQ(live.entry_count(), 10u);
  EXPECT_EQ(live.lookup(obj(3))->value, 21u);
  EXPECT_FALSE(live.lookup(obj(100)).has_value());
}

// for_each enumerates LRU -> MRU, so replaying into a fresh cache through
// insert() preserves which record a future set conflict will evict.
TEST(HintCacheTest, ForEachEnumeratesInRecencyOrder) {
  AssociativeHintCache c(64);  // one 4-way set
  for (std::uint64_t k = 1; k <= 4; ++k) c.insert(obj(k), loc(k));
  ASSERT_TRUE(c.lookup(obj(2)).has_value());  // obj 1 is now the LRU

  std::vector<std::uint64_t> order;
  c.for_each([&](ObjectId id, MachineId) { order.push_back(id.value); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 1u);
  EXPECT_EQ(order.back(), 2u);

  AssociativeHintCache replay(64);
  for (const std::uint64_t k : order) replay.insert(obj(k), loc(k));
  replay.insert(obj(5), loc(5));  // conflict: must evict the true LRU, obj 1
  EXPECT_FALSE(replay.lookup(obj(1)).has_value());
  EXPECT_TRUE(replay.lookup(obj(2)).has_value());
}

TEST(UnboundedHintStoreTest, Basics) {
  UnboundedHintStore s;
  EXPECT_EQ(s.lookup(obj(1)), std::nullopt);
  s.insert(obj(1), loc(2));
  EXPECT_EQ(s.lookup(obj(1))->value, 2u);
  EXPECT_EQ(s.entry_count(), 1u);
  EXPECT_TRUE(s.erase(obj(1)));
  EXPECT_EQ(s.entry_count(), 0u);
}

TEST(HintStoreFactoryTest, SelectsByCapacity) {
  auto bounded = make_hint_store(1_MB);
  auto unbounded = make_hint_store(kUnlimitedBytes);
  EXPECT_NE(dynamic_cast<AssociativeHintCache*>(bounded.get()), nullptr);
  EXPECT_NE(dynamic_cast<UnboundedHintStore*>(unbounded.get()), nullptr);
}

// --- metadata hierarchy ---

struct Hier {
  net::HierarchyTopology topo{16, 4, 4};  // 16 leaves, 4 groups
  sim::EventQueue queue;
  MetadataHierarchy meta;

  explicit Hier(MetadataConfig cfg = {})
      : meta(topo, cfg, queue) {}
};

TEST(MetadataHierarchyTest, FirstCopyPropagatesEverywhere) {
  Hier h;
  h.meta.inform(0, obj(99));
  for (NodeIndex n = 1; n < 16; ++n) {
    auto near = h.meta.find_nearest(n, obj(99));
    ASSERT_TRUE(near.has_value()) << "leaf " << n;
    EXPECT_EQ(*near, 0u);
  }
  // The origin leaf has no hint about itself.
  EXPECT_EQ(h.meta.find_nearest(0, obj(99)), std::nullopt);
  EXPECT_EQ(h.meta.root_updates(), 1u);
}

TEST(MetadataHierarchyTest, SecondCopyInSameSubtreeIsFiltered) {
  Hier h;
  h.meta.inform(0, obj(99));
  const auto msgs_before = h.meta.total_messages();
  // Leaf 1 (same L2 group as 0) pulls a copy: its hint points at 0, so the
  // update must die at the leaf and nothing new reaches the root.
  h.meta.inform(1, obj(99));
  EXPECT_EQ(h.meta.root_updates(), 1u);
  EXPECT_EQ(h.meta.total_messages(), msgs_before);
}

TEST(MetadataHierarchyTest, CopyInOtherSubtreeUpdatesItsGroupOnly) {
  Hier h;
  h.meta.inform(0, obj(99));
  h.meta.inform(8, obj(99));  // group 2
  // Leaves in group 2 now prefer the near copy at 8.
  EXPECT_EQ(*h.meta.find_nearest(9, obj(99)), 8u);
  EXPECT_EQ(*h.meta.find_nearest(11, obj(99)), 8u);
  // Leaves in group 0 keep pointing at 0 (their near copy).
  EXPECT_EQ(*h.meta.find_nearest(1, obj(99)), 0u);
}

TEST(MetadataHierarchyTest, SequentialEvictionDropsHintsInOrphanedGroup) {
  Hier h;
  h.meta.inform(0, obj(99));
  h.meta.inform(8, obj(99));  // filtered upward: the root never learns of it
  h.meta.invalidate(0, obj(99));
  // Group-0 leaves lose their hint (the root knew no other copy) and will
  // self-heal on the next demand fetch; group-2 leaves keep their near copy.
  EXPECT_EQ(h.meta.find_nearest(1, obj(99)), std::nullopt);
  EXPECT_EQ(*h.meta.find_nearest(9, obj(99)), 8u);
}

TEST(MetadataHierarchyTest, EvictionAdvertisesNextBestLocation) {
  // Two copies appear concurrently (before propagation), so both register at
  // the root; evicting one must fail the system over to the other.
  MetadataConfig cfg;
  cfg.hop_delay = 1.0;
  Hier h(cfg);
  h.meta.inform(0, obj(99));
  h.meta.inform(8, obj(99));
  h.queue.run_until(100.0);  // let everything settle
  h.meta.invalidate(0, obj(99));
  h.queue.run_until(200.0);
  auto near = h.meta.find_nearest(1, obj(99));
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(*near, 8u);
}

TEST(MetadataHierarchyTest, LastEvictionForgetsObject) {
  Hier h;
  h.meta.inform(0, obj(99));
  h.meta.invalidate(0, obj(99));
  for (NodeIndex n = 0; n < 16; ++n) {
    EXPECT_EQ(h.meta.find_nearest(n, obj(99)), std::nullopt) << n;
  }
}

TEST(MetadataHierarchyTest, ConsistencyInvalidationWipesHints) {
  Hier h;
  h.meta.inform(0, obj(99));
  h.meta.inform(8, obj(99));
  h.meta.invalidate_object(obj(99));
  for (NodeIndex n = 0; n < 16; ++n) {
    EXPECT_EQ(h.meta.find_nearest(n, obj(99)), std::nullopt) << n;
  }
}

TEST(MetadataHierarchyTest, NearestPrefersOwnSubtree) {
  Hier h;
  h.meta.inform(12, obj(5));  // group 3
  EXPECT_EQ(*h.meta.find_nearest(1, obj(5)), 12u);
  h.meta.inform(2, obj(5));  // group 0: nearer for leaf 1
  EXPECT_EQ(*h.meta.find_nearest(1, obj(5)), 2u);
}

TEST(MetadataHierarchyTest, RootSeesFractionOfUpdates) {
  Hier h;
  // Copies of 50 objects appear at several leaves each.
  for (std::uint64_t o = 1; o <= 50; ++o) {
    h.meta.inform(static_cast<NodeIndex>(o % 16), obj(o));
    h.meta.inform(static_cast<NodeIndex>((o + 5) % 16), obj(o));
    h.meta.inform(static_cast<NodeIndex>((o + 9) % 16), obj(o));
  }
  EXPECT_EQ(h.meta.leaf_updates(), 150u);
  // The hierarchy filters: the root hears far fewer than all updates.
  EXPECT_LT(h.meta.root_updates(), h.meta.leaf_updates() / 2);
  EXPECT_GE(h.meta.root_updates(), 50u);  // at least the first copies
}

TEST(MetadataHierarchyTest, DelayedPropagationArrivesAfterDelay) {
  MetadataConfig cfg;
  cfg.hop_delay = 10.0;
  Hier h(cfg);
  h.meta.inform(0, obj(7));
  // Nothing visible yet anywhere else.
  EXPECT_EQ(h.meta.find_nearest(9, obj(7)), std::nullopt);
  // After one hop (leaf->L2) siblings still don't know; the full path to a
  // distant group is leaf -> L2 -> root -> L2 -> leaf = 4 hops.
  h.queue.run_until(15.0);
  EXPECT_EQ(h.meta.find_nearest(9, obj(7)), std::nullopt);
  h.queue.run_until(100.0);
  ASSERT_TRUE(h.meta.find_nearest(9, obj(7)).has_value());
  EXPECT_EQ(*h.meta.find_nearest(9, obj(7)), 0u);
  // Same-group sibling needed only 2 hops.
  EXPECT_EQ(*h.meta.find_nearest(1, obj(7)), 0u);
}

TEST(MetadataHierarchyTest, BoundedLeafStoresLoseHints) {
  MetadataConfig cfg;
  cfg.leaf_hint_bytes = 64;  // one 4-way set per leaf
  Hier h(cfg);
  for (std::uint64_t o = 1; o <= 100; ++o) {
    h.meta.inform(static_cast<NodeIndex>(o % 4), obj(o * 31 + 7));
  }
  // A leaf in another group can remember at most 4 of the 100.
  std::size_t remembered = 0;
  for (std::uint64_t o = 1; o <= 100; ++o) {
    remembered += h.meta.find_nearest(12, obj(o * 31 + 7)).has_value();
  }
  EXPECT_LE(remembered, 4u);
}

}  // namespace
}  // namespace bh::hints
