// Tests for the wire format, transports, and hint peers.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "hints/hint_record.h"
#include "proto/hint_peer.h"
#include "proto/transport.h"
#include "proto/wire.h"

namespace bh::proto {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v}; }
MachineId mid(std::uint64_t v) { return MachineId{v}; }

// --- wire format ---

TEST(WireTest, UpdateIsTwentyBytesOnTheWire) {
  const std::vector<HintUpdate> one{{Action::kInform, obj(1), mid(2)}};
  EXPECT_EQ(encode_body(one).size(), kUpdateWireBytes);
  const std::vector<HintUpdate> five(5, {Action::kInform, obj(1), mid(2)});
  EXPECT_EQ(encode_body(five).size(), 5 * kUpdateWireBytes);
}

TEST(WireTest, BodyRoundTrip) {
  std::vector<HintUpdate> in;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    in.push_back({i % 2 ? Action::kInform : Action::kInvalidate,
                  obj(i * 0x123456789ULL), mid(i << 32 | 3128)});
  }
  auto body = encode_body(in);
  auto out = decode_body(body);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(WireTest, BodyRejectsBadLengthAndAction) {
  std::vector<std::uint8_t> short_body(19, 0);
  EXPECT_FALSE(decode_body(short_body).has_value());
  std::vector<std::uint8_t> bad_action(20, 0);  // action 0 is invalid
  EXPECT_FALSE(decode_body(bad_action).has_value());
}

TEST(WireTest, PostFramingRoundTrip) {
  std::vector<HintUpdate> in{{Action::kInform, obj(77), mid(88)},
                             {Action::kInvalidate, obj(99), mid(11)}};
  auto message = encode_post(in);
  const std::string text(message.begin(), message.end());
  EXPECT_TRUE(text.starts_with("POST /updates HTTP/1.0\r\n"));
  EXPECT_NE(text.find("Content-Length: 40"), std::string::npos);
  auto out = decode_post(message);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, in);
}

TEST(WireTest, PostRejectsMalformed) {
  std::string bad = "GET /updates HTTP/1.0\r\n\r\n";
  EXPECT_FALSE(decode_post(std::span(
                   reinterpret_cast<const std::uint8_t*>(bad.data()),
                   bad.size()))
                   .has_value());
  auto message = encode_post(std::vector<HintUpdate>{
      {Action::kInform, obj(1), mid(2)}});
  message.pop_back();  // truncate
  EXPECT_FALSE(decode_post(message).has_value());
}

TEST(WireTest, EmptyBatch) {
  auto message = encode_post({});
  auto out = decode_post(message);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(WireTest, UpdateKeySeparatesEveryField) {
  const HintUpdate base{Action::kInform, ObjectId{1}, MachineId{2}};
  HintUpdate other_action = base;
  other_action.action = Action::kInvalidate;
  HintUpdate other_object = base;
  other_object.object = ObjectId{3};
  HintUpdate other_location = base;
  other_location.location = MachineId{4};

  EXPECT_EQ(update_key(base), update_key(base));
  EXPECT_NE(update_key(base), update_key(other_action));
  EXPECT_NE(update_key(base), update_key(other_object));
  EXPECT_NE(update_key(base), update_key(other_location));
}

TEST(WireTest, ComplementKeyFlipsOnlyTheAction) {
  const HintUpdate inform{Action::kInform, ObjectId{9}, MachineId{7}};
  HintUpdate invalidate = inform;
  invalidate.action = Action::kInvalidate;
  // The complement of an inform is the matching invalidate, and the mapping
  // is an involution.
  EXPECT_EQ(complement_key(inform), update_key(invalidate));
  EXPECT_EQ(complement_key(invalidate), update_key(inform));
  EXPECT_NE(complement_key(inform), update_key(inform));
}

TEST(WireTest, PairKeyIsActionBlind) {
  const HintUpdate inform{Action::kInform, ObjectId{9}, MachineId{7}};
  HintUpdate invalidate = inform;
  invalidate.action = Action::kInvalidate;
  // An update and its complement share the pair key (the coalescing
  // identity), which is the inform-form update key.
  EXPECT_EQ(pair_key(inform), pair_key(invalidate));
  EXPECT_EQ(pair_key(inform), update_key(inform));
  HintUpdate other_object = inform;
  other_object.object = ObjectId{10};
  EXPECT_NE(pair_key(inform), pair_key(other_object));
  HintUpdate other_location = inform;
  other_location.location = MachineId{8};
  EXPECT_NE(pair_key(inform), pair_key(other_location));
}

TEST(WireTest, PushTargetsRoundTrip) {
  const std::vector<std::uint16_t> ports{8001, 8002, 65535};
  const std::string encoded = encode_push_targets(ports);
  EXPECT_EQ(encoded, "8001,8002,65535");
  const auto decoded = decode_push_targets(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ports);
}

TEST(WireTest, PushTargetsEmptyListIsEmptyString) {
  EXPECT_EQ(encode_push_targets({}), "");
  const auto decoded = decode_push_targets("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(WireTest, PushTargetsRejectsMalformed) {
  // Every malformed token invalidates the whole header: a receiver must not
  // seed hints from a half-parsed list.
  EXPECT_FALSE(decode_push_targets("8001,").has_value());   // trailing comma
  EXPECT_FALSE(decode_push_targets(",8001").has_value());   // leading comma
  EXPECT_FALSE(decode_push_targets("8001,,8002").has_value());
  EXPECT_FALSE(decode_push_targets("80x1").has_value());    // non-numeric
  EXPECT_FALSE(decode_push_targets("8001,peer").has_value());
  EXPECT_FALSE(decode_push_targets("65536").has_value());   // > port range
  EXPECT_FALSE(decode_push_targets(" 8001").has_value());   // stray space
}

// --- transports ---

TEST(TransportTest, LoopbackDeliversInOrder) {
  LoopbackTransport t;
  std::vector<int> seen;
  t.bind(mid(1), [&](MachineId, std::span<const std::uint8_t> p) {
    seen.push_back(p[0]);
  });
  t.send(mid(9), mid(1), {1});
  t.send(mid(9), mid(1), {2});
  t.send(mid(9), mid(1), {3});
  EXPECT_EQ(t.queued(), 3u);
  EXPECT_EQ(t.pump(), 3u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(TransportTest, UnboundEndpointCountsDrop) {
  LoopbackTransport t;
  t.send(mid(1), mid(2), {1});
  t.pump();
  EXPECT_EQ(t.dropped_unbound(), 1u);
}

TEST(TransportTest, PumpRespectsLimit) {
  LoopbackTransport t;
  int count = 0;
  t.bind(mid(1), [&](MachineId, std::span<const std::uint8_t>) { ++count; });
  for (int i = 0; i < 5; ++i) t.send(mid(2), mid(1), {0});
  EXPECT_EQ(t.pump(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(t.queued(), 3u);
}

TEST(TransportTest, LossyDropsApproximately) {
  LoopbackTransport inner;
  int received = 0;
  inner.bind(mid(1),
             [&](MachineId, std::span<const std::uint8_t>) { ++received; });
  LossyTransport lossy(inner, 0.3, 42);
  for (int i = 0; i < 10000; ++i) lossy.send(mid(2), mid(1), {0});
  inner.pump();
  EXPECT_NEAR(static_cast<double>(lossy.dropped()), 3000, 200);
  EXPECT_EQ(received + static_cast<int>(lossy.dropped()), 10000);
}

// --- hint peers ---

struct TwoPeers {
  LoopbackTransport net;
  HintPeer a, b;

  TwoPeers()
      : a({mid(1), {mid(2)}}, net, 0xA),
        b({mid(2), {mid(1)}}, net, 0xB) {}

  void exchange() {
    a.flush();
    b.flush();
    net.pump();
  }
};

TEST(HintPeerTest, InformPropagatesToNeighbor) {
  TwoPeers p;
  p.a.inform(obj(5));
  p.exchange();
  auto hint = p.b.find_nearest(obj(5));
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, mid(1));
  // The origin learns nothing about itself.
  EXPECT_EQ(p.a.find_nearest(obj(5)), std::nullopt);
}

TEST(HintPeerTest, InvalidatePropagates) {
  TwoPeers p;
  p.a.inform(obj(5));
  p.exchange();
  p.a.invalidate(obj(5));
  p.exchange();
  EXPECT_EQ(p.b.find_nearest(obj(5)), std::nullopt);
}

TEST(HintPeerTest, InvalidateOnlyMatchingLocation) {
  TwoPeers p;
  // b believes the copy is at 3; an invalidate from 1 must not disturb it.
  p.b.store().insert(obj(5), mid(3));
  p.a.invalidate(obj(5));
  p.exchange();
  EXPECT_EQ(p.b.find_nearest(obj(5)), mid(3));
}

TEST(HintPeerTest, BatchesAreMergedAndCounted) {
  TwoPeers p;
  p.a.inform(obj(5));
  p.a.inform(obj(5));  // duplicate within the period
  p.a.inform(obj(6));
  p.a.flush();
  p.net.pump();
  EXPECT_EQ(p.a.stats().batches_sent, 1u);
  EXPECT_EQ(p.a.stats().updates_sent, 2u);  // merged
  // Framing overhead + 2 * 20 bytes.
  EXPECT_GE(p.a.stats().bytes_sent, 2 * kUpdateWireBytes);
  EXPECT_EQ(p.b.stats().updates_received, 2u);
}

TEST(HintPeerTest, RelaysAlongAChainButNotBack) {
  // a - b - c: updates from a must reach c via b, and never echo to a.
  LoopbackTransport net;
  HintPeer a({mid(1), {mid(2)}}, net, 1);
  HintPeer b({mid(2), {mid(1), mid(3)}}, net, 2);
  HintPeer c({mid(3), {mid(2)}}, net, 3);

  a.inform(obj(7));
  a.flush();
  net.pump();
  b.flush();
  net.pump();
  auto hint = c.find_nearest(obj(7));
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, mid(1));
  // b did not send the update back to a.
  EXPECT_EQ(a.stats().updates_received, 0u);
}

TEST(HintPeerTest, DistanceFunctionKeepsNearestHint) {
  LoopbackTransport net;
  PeerConfig cfg{mid(10), {}, 1_MB, 60.0,
                 [](MachineId self, MachineId other) {
                   return std::abs(static_cast<double>(self.value) -
                                   static_cast<double>(other.value));
                 }};
  HintPeer p(cfg, net, 4);
  HintPeer src11({mid(11), {mid(10)}}, net, 5);
  HintPeer src99({mid(99), {mid(10)}}, net, 6);
  src99.inform(obj(1));
  src99.flush();
  net.pump();
  src11.inform(obj(1));
  src11.flush();
  net.pump();
  EXPECT_EQ(p.find_nearest(obj(1)), mid(11));  // nearer replaced farther
  // A farther advertisement does not displace the near one.
  src99.inform(obj(1));
  src99.flush();
  net.pump();
  EXPECT_EQ(p.find_nearest(obj(1)), mid(11));
}

TEST(HintPeerTest, TimerFlushesWithinMaxPeriod) {
  TwoPeers p;
  p.a.inform(obj(5));
  const SimTime deadline = p.a.next_flush_at();
  EXPECT_GE(deadline, 0.0);
  EXPECT_LE(deadline, 60.0);  // randomized uniform(0, 60) per the paper
  p.a.on_timer(deadline);
  EXPECT_EQ(p.a.stats().batches_sent, 1u);
  // The next deadline moved forward by at most another max period.
  EXPECT_GE(p.a.next_flush_at(), deadline);
  EXPECT_LE(p.a.next_flush_at(), deadline + 60.0);
}

TEST(HintPeerTest, MalformedMessageIsCountedNotApplied) {
  LoopbackTransport net;
  HintPeer a({mid(1), {}}, net, 1);
  net.send(mid(9), mid(1), {'j', 'u', 'n', 'k'});
  net.pump();
  EXPECT_EQ(a.stats().malformed_messages, 1u);
  EXPECT_EQ(a.stats().updates_received, 0u);
}

TEST(HintPeerTest, SurvivesLossyNetwork) {
  // Hints are soft state: loss only means missing knowledge, never a crash
  // or a wrong application.
  LoopbackTransport inner;
  LossyTransport lossy(inner, 0.5, 77);
  HintPeer a({mid(1), {mid(2)}}, lossy, 1);
  HintPeer b({mid(2), {mid(1)}}, lossy, 2);
  int known = 0;
  for (std::uint64_t o = 1; o <= 200; ++o) {
    a.inform(obj(o));
    a.flush();
    inner.pump();
    known += b.find_nearest(obj(o)).has_value();
  }
  EXPECT_GT(known, 50);
  EXPECT_LT(known, 150);
}

}  // namespace
}  // namespace bh::proto
