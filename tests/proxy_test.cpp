// End-to-end tests of the proxy daemon layer over real loopback TCP: HTTP
// parsing, the origin server, cache-to-cache transfers driven by hints, the
// false-positive error path, eviction advertisements, batch exchange, and —
// driven by the deterministic FaultInjector — every failure path: dead and
// resetting peers, a downed origin, oversized objects, cyclic hint
// topologies, and quarantine/rejoin.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "proto/wire.h"
#include "proxy/fault_injector.h"
#include "proxy/http.h"
#include "proxy/io_backend.h"
#include "proxy/origin_server.h"
#include "proxy/proxy_server.h"

namespace bh::proxy {
namespace {

// --- HTTP layer ---

TEST(HttpTest, RequestRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/obj/00000000000000ff?size=10";
  req.headers.emplace_back("X-No-Forward", "1");
  req.body = "hello";
  const std::string wire = serialize(req);
  auto back = parse_request(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->method, "GET");
  EXPECT_EQ(back->target, req.target);
  EXPECT_EQ(back->body, "hello");
  EXPECT_TRUE(back->header("x-no-forward").has_value());
  EXPECT_EQ(back->path(), "/obj/00000000000000ff");
  EXPECT_EQ(back->query_param("size"), "10");
  EXPECT_EQ(back->query_param("missing"), std::nullopt);
}

TEST(HttpTest, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Cached";
  resp.headers.emplace_back("X-Served-By", "p1");
  resp.body = std::string(1000, 'x');
  auto back = parse_response(serialize(resp));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, 404);
  EXPECT_EQ(back->reason, "Not Cached");
  EXPECT_EQ(back->body.size(), 1000u);
  EXPECT_EQ(back->header("x-served-by"), "p1");
}

TEST(HttpTest, ParserRejectsMalformed) {
  EXPECT_FALSE(parse_request("garbage").has_value());
  EXPECT_FALSE(parse_request("GET /x\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(
      parse_request("GET /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nab")
          .has_value());  // short body
  EXPECT_FALSE(
      parse_request("GET /x HTTP/1.0\r\nBadHeader\r\n\r\n").has_value());
  EXPECT_FALSE(parse_response("HTTP/1.0 abc Bad\r\n\r\n").has_value());
}

TEST(HttpTest, BinaryBodySurvives) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/updates";
  req.body = std::string("\x00\x01\xff\r\n\r\n\x02", 8);
  auto back = parse_request(serialize(req));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->body, req.body);
}

// --- origin body determinism ---

TEST(OriginBodyTest, DeterministicAndVersionSensitive) {
  const ObjectId id{0x1234};
  EXPECT_EQ(origin_body(id, 1, 100), origin_body(id, 1, 100));
  EXPECT_NE(origin_body(id, 1, 100), origin_body(id, 2, 100));
  EXPECT_NE(origin_body(id, 1, 100), origin_body(ObjectId{0x1235}, 1, 100));
  EXPECT_EQ(origin_body(id, 1, 100).size(), 100u);
}

TEST(OriginBodyTest, PathRoundTrip) {
  const ObjectId id{0xDEADBEEFCAFE1234ULL};
  const std::string path = object_path(id, 512);
  EXPECT_EQ(path, "/obj/deadbeefcafe1234?size=512");
  auto back = object_from_path("/obj/deadbeefcafe1234");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, id);
  EXPECT_FALSE(object_from_path("/obj/short").has_value());
  EXPECT_FALSE(object_from_path("/other").has_value());
}

// --- live servers ---

// Fetch through a proxy and return (status, X-Cache, body).
struct FetchResult {
  int status = 0;
  std::string cache;
  std::string body;
};

FetchResult fetch(std::uint16_t proxy_port, ObjectId id, std::size_t size) {
  HttpRequest req;
  req.method = "GET";
  req.target = object_path(id, size);
  auto resp = http_call(proxy_port, req);
  FetchResult r;
  if (!resp) return r;
  r.status = resp->status;
  if (auto c = resp->header("X-Cache")) r.cache = std::string(*c);
  r.body = resp->body.to_string();
  return r;
}

TEST(OriginServerTest, ServesDeterministicContent) {
  OriginServer origin;
  HttpRequest req;
  req.method = "GET";
  req.target = object_path(ObjectId{42}, 256);
  auto resp = http_call(origin.port(), req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, origin_body(ObjectId{42}, 1, 256));
  EXPECT_EQ(resp->header("X-Version"), "1");
  origin.modify(ObjectId{42});
  resp = http_call(origin.port(), req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, origin_body(ObjectId{42}, 2, 256));
  EXPECT_EQ(origin.requests_served(), 2u);
}

TEST(OriginServerTest, RejectsUnknownPaths) {
  OriginServer origin;
  HttpRequest req;
  req.method = "GET";
  req.target = "/nope";
  auto resp = http_call(origin.port(), req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 404);
}

TEST(ProxyServerTest, MissThenLocalHit) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  const ObjectId id{7};
  auto first = fetch(proxy.port(), id, 100);
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.cache, "MISS");
  EXPECT_EQ(first.body, origin_body(id, 1, 100));

  auto second = fetch(proxy.port(), id, 100);
  EXPECT_EQ(second.cache, "HIT");
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(origin.requests_served(), 1u);

  const auto s = proxy.stats();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.local_hits, 1u);
  EXPECT_EQ(s.origin_fetches, 1u);
}

// The full proxy-and-origin data path on each explicitly selected I/O
// backend: same requests, same cache behavior, regardless of how bytes move.
TEST(ProxyServerTest, ServesIdenticallyOnEveryBackend) {
  std::vector<IoBackendKind> kinds{IoBackendKind::kEpoll};
  std::string why;
  if (io_uring_supported(&why)) {
    kinds.push_back(IoBackendKind::kIoUring);
  } else {
    std::fprintf(stderr, "io_uring unavailable (%s): backend sweep is epoll only\n",
                 why.c_str());
  }
  for (const IoBackendKind kind : kinds) {
    SCOPED_TRACE(io_backend_kind_name(kind));
    OriginServer origin(kind);
    ProxyConfig cfg;
    cfg.origin_port = origin.port();
    cfg.io_backend = kind;
    ProxyServer proxy(cfg);

    const ObjectId id{71};
    auto first = fetch(proxy.port(), id, 100);
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.cache, "MISS");
    EXPECT_EQ(first.body, origin_body(id, 1, 100));
    auto second = fetch(proxy.port(), id, 100);
    EXPECT_EQ(second.cache, "HIT");
    EXPECT_EQ(second.body, first.body);
  }
}

TEST(ProxyServerTest, HintEnablesCacheToCacheTransfer) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  ProxyServer b(cb);

  const ObjectId id{9};
  // b fetches from the origin and advertises its copy to its neighbour a.
  EXPECT_EQ(fetch(b.port(), id, 64).cache, "MISS");
  b.flush_hints();

  // a now holds a hint naming b: its first fetch is a SIBLING transfer.
  auto via_a = fetch(a.port(), id, 64);
  EXPECT_EQ(via_a.status, 200);
  EXPECT_EQ(via_a.cache, "SIBLING");
  EXPECT_EQ(via_a.body, origin_body(id, 1, 64));
  EXPECT_EQ(origin.requests_served(), 1u);  // the origin was hit exactly once

  const auto sa = a.stats();
  EXPECT_EQ(sa.sibling_hits, 1u);
  const auto sb = b.stats();
  EXPECT_EQ(sb.peer_serves, 1u);
}

TEST(ProxyServerTest, FalsePositiveCostsOneProbeThenOrigin) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  ProxyServer b(cb);

  const ObjectId id{11};
  fetch(b.port(), id, 64);
  b.flush_hints();          // a now has the hint
  b.invalidate(id);         // ... which is now stale

  auto via_a = fetch(a.port(), id, 64);
  EXPECT_EQ(via_a.status, 200);
  EXPECT_EQ(via_a.cache, "MISS");  // fell through to the origin
  const auto sa = a.stats();
  EXPECT_EQ(sa.false_positives, 1u);
  const auto sb = b.stats();
  EXPECT_EQ(sb.peer_rejects, 1u);
  // The bogus hint is gone: the next a-side fetch is a plain local hit.
  EXPECT_EQ(fetch(a.port(), id, 64).cache, "HIT");
}

TEST(ProxyServerTest, EvictionAdvertisesInvalidation) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  cb.capacity_bytes = 150;  // tiny: the second object evicts the first
  ProxyServer b(cb);

  const ObjectId first{21}, second{22};
  fetch(b.port(), first, 100);
  fetch(b.port(), second, 100);  // evicts `first`
  b.flush_hints();

  // a heard both the inform and the invalidate for `first`: no stale hint,
  // so a's fetch goes straight to the origin without probing b.
  auto via_a = fetch(a.port(), first, 100);
  EXPECT_EQ(via_a.cache, "MISS");
  EXPECT_EQ(a.stats().false_positives, 0u);
  // And the hint for `second` still works.
  EXPECT_EQ(fetch(a.port(), second, 100).cache, "SIBLING");
}

// --- disk tier: demotion, promotion, restart ---

// Fresh per-test directory for a daemon's persistent state.
std::string fresh_state_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/bh_proxy_" + name;
  std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

TEST(ProxyDiskTierTest, DemotesEvictionsAndServesFromDisk) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.capacity_bytes = 400;  // one 300-byte object at a time in RAM
  cfg.disk_path = fresh_state_dir("demote");
  cfg.disk_fsync = false;
  ProxyServer proxy(cfg);
  ASSERT_NE(proxy.disk(), nullptr);

  const ObjectId first{31}, second{32};
  EXPECT_EQ(fetch(proxy.port(), first, 300).cache, "MISS");
  EXPECT_EQ(fetch(proxy.port(), second, 300).cache, "MISS");  // evicts `first`
  proxy.disk()->drain_async();  // demotion is asynchronous; settle it
  EXPECT_EQ(proxy.stats().disk_demotions, 1u);
  EXPECT_EQ(proxy.disk()->object_count(), 1u);

  // The evicted object comes back from the L2 tier, not the origin.
  auto back = fetch(proxy.port(), first, 300);
  EXPECT_EQ(back.status, 200);
  EXPECT_EQ(back.cache, "DISK");
  EXPECT_EQ(back.body, origin_body(first, 1, 300));
  EXPECT_EQ(origin.requests_served(), 2u);
  const ProxyStats s = proxy.stats();
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.disk_promotions, 1u);
  // The promotion re-inserted `first` into RAM (demoting `second`), so the
  // next fetch is a plain RAM hit and the disk now holds both.
  EXPECT_EQ(fetch(proxy.port(), first, 300).cache, "HIT");
  proxy.disk()->drain_async();
  EXPECT_EQ(proxy.disk()->object_count(), 2u);

  // Invalidation clears both tiers.
  proxy.invalidate(first);
  EXPECT_FALSE(proxy.disk()->contains(first));
  EXPECT_EQ(fetch(proxy.port(), first, 300).cache, "MISS");
  EXPECT_EQ(origin.requests_served(), 3u);
}

TEST(ProxyDiskTierTest, DiskTierSurvivesRestart) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.capacity_bytes = 400;
  cfg.disk_path = fresh_state_dir("restart");
  cfg.disk_fsync = false;

  {
    ProxyServer proxy(cfg);
    for (std::uint64_t k = 41; k <= 43; ++k) {
      EXPECT_EQ(fetch(proxy.port(), ObjectId{k}, 300).cache, "MISS");
    }
    proxy.disk()->drain_async();  // demotion is asynchronous; settle it
    EXPECT_EQ(proxy.stats().disk_demotions, 2u);
  }
  ASSERT_EQ(origin.requests_served(), 3u);

  // A restarted daemon rescans the tree and serves the demoted objects
  // without touching the origin.
  ProxyServer back(cfg);
  ASSERT_NE(back.disk(), nullptr);
  EXPECT_EQ(back.disk()->object_count(), 2u);
  auto warm = fetch(back.port(), ObjectId{41}, 300);
  EXPECT_EQ(warm.status, 200);
  EXPECT_EQ(warm.cache, "DISK");
  EXPECT_EQ(warm.body, origin_body(ObjectId{41}, 1, 300));
  EXPECT_EQ(origin.requests_served(), 3u);
}

TEST(ProxyDiskTierTest, HintImageWarmsRestartAndPeerServesFromDisk) {
  OriginServer origin;
  // b owns a disk tier; its RAM eviction demotes (no invalidation — the
  // object never left the node, so the hint stays valid).
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.capacity_bytes = 400;
  cb.disk_path = fresh_state_dir("peer_disk");
  cb.disk_fsync = false;
  const std::string image = fresh_state_dir("hint_img") + "/hints.img";

  const ObjectId demoted{51}, resident{52};
  {
    ProxyConfig ca;
    ca.name = "a";
    ca.origin_port = origin.port();
    ca.hint_image_path = image;
    ProxyServer a(ca);
    EXPECT_FALSE(a.hint_image_restored());  // nothing to load yet

    ProxyServer b(cb);
    b.add_hint_neighbor(a.port());
    fetch(b.port(), demoted, 300);
    fetch(b.port(), resident, 300);  // demotes `demoted` to b's disk
    b.flush_hints();
    // a heard both informs and no invalidation; its clean stop saves the
    // image. b stays alive across a's restart (scoped separately below).
    a.stop();

    ProxyConfig ca2 = ca;
    ca2.name = "a2";
    ProxyServer a2(ca2);
    EXPECT_TRUE(a2.hint_image_restored());
    EXPECT_EQ(a2.hint_image_entries(), 2u);

    // The warm hint names b; b serves the probe from its disk tier.
    auto via_a2 = fetch(a2.port(), demoted, 300);
    EXPECT_EQ(via_a2.status, 200);
    EXPECT_EQ(via_a2.cache, "SIBLING");
    EXPECT_EQ(via_a2.body, origin_body(demoted, 1, 300));
    EXPECT_EQ(origin.requests_served(), 2u);  // never refetched
    const ProxyStats sb = b.stats();
    EXPECT_EQ(sb.peer_serves, 1u);
    EXPECT_EQ(sb.disk_hits, 1u);
  }
}

TEST(ProxyServerTest, UpdatesRelayAlongAChain) {
  OriginServer origin;
  ProxyConfig c1;
  c1.name = "a";
  c1.origin_port = origin.port();
  ProxyServer a(c1);
  ProxyConfig c3 = c1;
  c3.name = "c";
  ProxyServer c(c3);
  // b in the middle relays between a and c.
  ProxyConfig c2 = c1;
  c2.name = "b";
  c2.hint_neighbors = {a.port(), c.port()};
  ProxyServer b(c2);

  // a -> (flush) -> b -> (flush) -> c.
  ProxyConfig c1b = c1;
  c1b.hint_neighbors = {b.port()};
  ProxyServer a2(c1b);

  const ObjectId id{33};
  fetch(a2.port(), id, 64);
  a2.flush_hints();
  b.flush_hints();
  // c must now hold a hint naming a2 — its fetch is a SIBLING transfer.
  auto via_c = fetch(c.port(), id, 64);
  EXPECT_EQ(via_c.cache, "SIBLING");
  EXPECT_EQ(via_c.body, origin_body(id, 1, 64));
  // b relayed but did not echo the update back to a2.
  EXPECT_EQ(a2.stats().updates_received, 0u);
  EXPECT_EQ(origin.requests_served(), 1u);
}

TEST(ProxyServerTest, PushOnPeerFetchSeedsOtherNeighbors) {
  OriginServer origin;
  ProxyConfig base;
  base.origin_port = origin.port();
  // Supplier s with push enabled; requester r; bystander t.
  ProxyConfig cs = base;
  cs.name = "supplier";
  cs.push_on_peer_fetch = true;
  ProxyServer s(cs);
  ProxyConfig cr = base;
  cr.name = "requester";
  ProxyServer r(cr);
  ProxyConfig ct = base;
  ct.name = "bystander";
  ProxyServer t(ct);
  s.add_hint_neighbor(r.port());
  s.add_hint_neighbor(t.port());
  r.add_hint_neighbor(s.port());

  const ObjectId id{51};
  fetch(s.port(), id, 64);  // supplier caches the object
  s.flush_hints();          // requester + bystander learn the hint

  // The requester's fetch is a cache-to-cache transfer; serving it triggers
  // a push to the bystander.
  EXPECT_EQ(fetch(r.port(), id, 64).cache, "SIBLING");
  EXPECT_EQ(s.stats().pushes_sent, 1u);
  EXPECT_EQ(t.stats().pushes_received, 1u);
  // The bystander now serves the object locally without any fetch.
  EXPECT_EQ(fetch(t.port(), id, 64).cache, "HIT");
  EXPECT_EQ(origin.requests_served(), 1u);
}

TEST(ProxyServerTest, PushPolicyOneSeedsExactlyOneBystander) {
  OriginServer origin;
  ProxyConfig base;
  base.origin_port = origin.port();
  ProxyConfig cs = base;
  cs.name = "supplier";
  cs.push_policy = "push-1";
  ProxyServer s(cs);
  EXPECT_EQ(s.push_policy_name(), "push-1");
  ProxyConfig cr = base;
  cr.name = "requester";
  ProxyServer r(cr);
  ProxyConfig ct1 = base;
  ct1.name = "bystander1";
  ProxyServer t1(ct1);
  ProxyConfig ct2 = base;
  ct2.name = "bystander2";
  ProxyServer t2(ct2);
  s.add_hint_neighbor(r.port());
  s.add_hint_neighbor(t1.port());
  s.add_hint_neighbor(t2.port());
  r.add_hint_neighbor(s.port());

  const ObjectId id{54};
  fetch(s.port(), id, 64);
  s.flush_hints();

  // Serving the requester's cache-to-cache transfer pushes to exactly one of
  // the two bystanders — push-1's degree, not push-all's.
  EXPECT_EQ(fetch(r.port(), id, 64).cache, "SIBLING");
  EXPECT_EQ(s.stats().pushes_sent, 1u);
  EXPECT_EQ(t1.stats().pushes_received + t2.stats().pushes_received, 1u);
  EXPECT_EQ(origin.requests_served(), 1u);
}

TEST(ProxyServerTest, PushTargetsHeaderSeedsSiblingHints) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer p(cfg);
  // No hints yet.
  EXPECT_EQ(p.metrics_snapshot().gauge("bh.proxy.hint_entries"), 0.0);

  // A pushed PUT naming a sibling target: the receiver stores the object AND
  // seeds a hint for the sibling's copy without waiting for a hint batch.
  HttpRequest put;
  put.method = "PUT";
  put.target = object_path(ObjectId{55}, 3);
  put.body = "abc";
  put.headers.emplace_back("X-Push-Policy", "push-half");
  put.headers.emplace_back("X-Push-Targets", "9321");
  auto resp = http_call(p.port(), put);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(p.stats().pushes_received, 1u);
  EXPECT_EQ(p.metrics_snapshot().gauge("bh.proxy.hint_entries"), 1.0);

  // A malformed header is ignored wholesale — the object still lands, no
  // partial hint seeding.
  put.target = object_path(ObjectId{56}, 3);
  put.headers.back() = {"X-Push-Targets", "9321,bogus"};
  resp = http_call(p.port(), put);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(p.metrics_snapshot().gauge("bh.proxy.hint_entries"), 1.0);
}

TEST(ProxyServerTest, PushPolicyNameResolvesAliasAndRejectsUnknown) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  // Legacy flag maps onto the push-all policy.
  cfg.push_on_peer_fetch = true;
  ProxyServer p(cfg);
  EXPECT_EQ(p.push_policy_name(), "push-all");

  ProxyConfig bad = cfg;
  bad.push_policy = "push-everything";
  EXPECT_THROW(ProxyServer{bad}, std::invalid_argument);
}

TEST(ProxyServerTest, PushNeverOverwritesExistingCopy) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer p(cfg);
  const ObjectId id{52};
  fetch(p.port(), id, 64);  // demand copy (version 1 bytes)
  // Push different bytes at it.
  HttpRequest put;
  put.method = "PUT";
  put.target = object_path(id, 3);
  put.body = "xyz";
  auto resp = http_call(p.port(), put);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(fetch(p.port(), id, 64).body, origin_body(id, 1, 64));
}

TEST(ProxyServerTest, ServerDrivenInvalidationPreventsStaleReads) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.register_with_origin = true;
  ProxyServer p(cfg);

  const ObjectId id{61};
  auto first = fetch(p.port(), id, 128);
  EXPECT_EQ(first.body, origin_body(id, 1, 128));
  // The origin modifies the object: the registered proxy's copy dies before
  // any client can read it.
  origin.modify(id);
  EXPECT_GE(origin.invalidations_sent(), 1u);
  auto second = fetch(p.port(), id, 128);
  EXPECT_EQ(second.cache, "MISS");  // not served stale
  EXPECT_EQ(second.body, origin_body(id, 2, 128));
}

TEST(ProxyServerTest, UnregisteredProxyServesStaleUntilInvalidated) {
  // Without registration the daemon has no way to learn about the change —
  // the weak-consistency failure mode the paper's assumption removes.
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer p(cfg);

  const ObjectId id{62};
  fetch(p.port(), id, 128);
  origin.modify(id);
  auto stale = fetch(p.port(), id, 128);
  EXPECT_EQ(stale.cache, "HIT");
  EXPECT_EQ(stale.body, origin_body(id, 1, 128));  // stale bytes
  p.invalidate(id);
  auto fresh = fetch(p.port(), id, 128);
  EXPECT_EQ(fresh.body, origin_body(id, 2, 128));
}

TEST(ProxyServerTest, MalformedBatchIsRejected) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);
  HttpRequest req;
  req.method = "POST";
  req.target = "/updates";
  req.body = "not a multiple of 20 bytes";
  auto resp = http_call(proxy.port(), req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
}

// --- failure paths (driven by the FaultInjector) ---

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Hands `proxy` a hint claiming `id` lives at `location` — the wire-level
// way to point a daemon at an arbitrary (possibly dead) peer.
void seed_hint(std::uint16_t proxy_port, ObjectId id, std::uint16_t location) {
  const proto::HintUpdate update{proto::Action::kInform, id,
                                 MachineId{location}};
  const auto body = proto::encode_body(std::span(&update, 1));
  HttpRequest post;
  post.method = "POST";
  post.target = "/updates";
  post.headers.emplace_back("X-From", std::to_string(location));
  post.body.assign(reinterpret_cast<const char*>(body.data()), body.size());
  auto resp = http_call(proxy_port, post);
  ASSERT_TRUE(resp.has_value());
  ASSERT_EQ(resp->status, 200);
}

TEST(FaultPathTest, DeadPeerProbeIsDeadlineBounded) {
  // A peer that accepted the connection and then died: the listener's
  // backlog completes the handshake but nothing ever answers. The probe
  // must cost its tight dedicated deadline, not the generic socket timeout.
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.peer_deadline_seconds = 0.5;
  ProxyServer proxy(cfg);

  auto blackhole = TcpListener::bind_ephemeral();
  ASSERT_TRUE(blackhole.has_value());  // never accept()ed: a silent peer

  FaultInjector injector(7);
  // A slow link on top of the dead peer: the injector delays the connect,
  // and the absolute deadline must still hold.
  injector.add_rule({FaultOp::kConnect, FaultKind::kDelay, blackhole->port(),
                     1.0, -1, 0.05});
  ScopedFaultInjection active(injector);

  const ObjectId id{71};
  seed_hint(proxy.port(), id, blackhole->port());

  const auto start = std::chrono::steady_clock::now();
  auto r = fetch(proxy.port(), id, 64);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.cache, "MISS");  // answered from the origin
  EXPECT_EQ(r.body, origin_body(id, 1, 64));
  EXPECT_LT(elapsed, 2 * cfg.peer_deadline_seconds);
  EXPECT_GE(injector.injections(), 1u);
  const auto s = proxy.stats();
  EXPECT_EQ(s.peer_failures, 1u);
  EXPECT_EQ(s.origin_fetches, 1u);
}

TEST(FaultPathTest, MidStreamResetFallsBackToOrigin) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  ProxyServer b(cb);

  const ObjectId x{72}, y{73};
  fetch(b.port(), x, 64);
  fetch(b.port(), y, 64);
  b.flush_hints();  // a hints both objects at b

  FaultInjector injector(7);
  injector.add_rule(
      {FaultOp::kRecv, FaultKind::kReset, b.port(), 1.0, /*max=*/1, 0.0});
  ScopedFaultInjection active(injector);

  // The probe reaches b but the reply dies mid-stream: one bounded error,
  // then the origin serves the request.
  auto r = fetch(a.port(), x, 64);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.cache, "MISS");
  EXPECT_EQ(r.body, origin_body(x, 1, 64));
  EXPECT_EQ(a.stats().peer_failures, 1u);

  // One reset is far below the quarantine threshold: the next probe (the
  // injection budget is spent) is a normal cache-to-cache transfer.
  EXPECT_EQ(fetch(a.port(), y, 64).cache, "SIBLING");
  EXPECT_EQ(a.stats().quarantines, 0u);
}

TEST(FaultPathTest, ShortReadFallsBackToOrigin) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  ProxyServer b(cb);

  const ObjectId id{74};
  fetch(b.port(), id, 256);
  b.flush_hints();

  FaultInjector injector(7);
  injector.add_rule(
      {FaultOp::kRecv, FaultKind::kShortRead, b.port(), 1.0, /*max=*/1, 0.0});
  ScopedFaultInjection active(injector);

  // The truncated reply must never surface: the client still gets the full
  // correct bytes, just from the origin.
  auto r = fetch(a.port(), id, 256);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.cache, "MISS");
  EXPECT_EQ(r.body, origin_body(id, 1, 256));
  EXPECT_EQ(a.stats().peer_failures, 1u);
}

TEST(FaultPathTest, OriginDownYields502WithoutCrash) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.origin_deadline_seconds = 1.0;
  ProxyServer proxy(cfg);

  const ObjectId cached{75}, uncached{76};
  fetch(proxy.port(), cached, 64);  // in cache before the outage
  origin.stop();

  const auto start = std::chrono::steady_clock::now();
  auto r = fetch(proxy.port(), uncached, 64);
  EXPECT_EQ(r.status, 502);
  EXPECT_LT(seconds_since(start), 2 * cfg.origin_deadline_seconds);
  EXPECT_EQ(proxy.stats().origin_failures, 1u);

  // The daemon keeps serving what it has.
  EXPECT_EQ(fetch(proxy.port(), cached, 64).cache, "HIT");
}

TEST(FaultPathTest, OversizedObjectLeavesCacheUntouched) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  cfg.capacity_bytes = 150;
  ProxyServer proxy(cfg);

  const ObjectId small{77}, huge{78};
  EXPECT_EQ(fetch(proxy.port(), small, 100).cache, "MISS");
  // The oversized object is served fine but must not wipe the cache on the
  // way through.
  auto big = fetch(proxy.port(), huge, 1000);
  EXPECT_EQ(big.status, 200);
  EXPECT_EQ(big.body.size(), 1000u);
  EXPECT_EQ(fetch(proxy.port(), small, 100).cache, "HIT");
  // And it was genuinely not cached.
  EXPECT_EQ(fetch(proxy.port(), huge, 1000).cache, "MISS");
}

TEST(FaultPathTest, CyclicTopologyReachesQuiescence) {
  // Directed 3-ring a -> b -> c -> a: before hop bounding and the seen-set,
  // an update circulated this cycle forever (each node excluded only the
  // immediate sender). Now the total updates_sent must go quiescent.
  OriginServer origin;
  ProxyConfig base;
  base.origin_port = origin.port();
  ProxyConfig ca = base;
  ca.name = "a";
  ProxyServer a(ca);
  ProxyConfig cb = base;
  cb.name = "b";
  ProxyServer b(cb);
  ProxyConfig cc = base;
  cc.name = "c";
  ProxyServer c(cc);
  a.add_hint_neighbor(b.port());
  b.add_hint_neighbor(c.port());
  c.add_hint_neighbor(a.port());

  const ObjectId id{79};
  fetch(a.port(), id, 64);

  auto total_sent = [&] {
    return a.stats().updates_sent + b.stats().updates_sent +
           c.stats().updates_sent;
  };
  std::uint64_t after_round3 = 0;
  for (int round = 0; round < 6; ++round) {
    a.flush_hints();
    b.flush_hints();
    c.flush_hints();
    if (round == 2) after_round3 = total_sent();
  }
  // Quiescent: three further full rounds moved nothing.
  EXPECT_EQ(total_sent(), after_round3);
  // The inform travelled each ring edge at most once.
  EXPECT_LE(after_round3, 3u);
  // ... and actually propagated: both b and c can locate a's copy.
  EXPECT_EQ(fetch(b.port(), id, 64).cache, "SIBLING");
  EXPECT_EQ(fetch(c.port(), id, 64).cache, "SIBLING");
}

TEST(FaultPathTest, HopBoundCapsRelay) {
  OriginServer origin;
  ProxyConfig base;
  base.origin_port = origin.port();
  ProxyConfig ca = base;
  ca.name = "a";
  ProxyServer a(ca);
  ProxyConfig cc = base;
  cc.name = "c";
  ProxyServer c(cc);
  ProxyConfig cb = base;
  cb.name = "b";
  cb.max_hint_hops = 1;  // apply locally, never relay
  cb.hint_neighbors = {c.port()};
  ProxyServer b(cb);
  a.add_hint_neighbor(b.port());

  const ObjectId id{80};
  fetch(a.port(), id, 64);
  a.flush_hints();
  b.flush_hints();

  EXPECT_GE(b.stats().updates_hop_capped, 1u);
  // b itself learned the hint...
  EXPECT_EQ(fetch(b.port(), id, 64).cache, "SIBLING");
  // ... but c never did: its fetch goes straight to the origin.
  EXPECT_EQ(fetch(c.port(), id, 64).cache, "MISS");
  EXPECT_EQ(c.stats().updates_received, 0u);
}

TEST(FaultPathTest, QuarantineDegradesThenReprobeRejoins) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ca.peer_deadline_seconds = 0.3;
  ca.quarantine_threshold = 2;
  ca.quarantine_seconds = 0.3;
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  ProxyServer b(cb);

  const ObjectId o1{81}, o2{82}, o3{83}, o4{84};
  for (const ObjectId o : {o1, o2, o3, o4}) fetch(b.port(), o, 64);
  b.flush_hints();  // a hints all four objects at b

  FaultInjector injector(7);
  // b "dies": its next two connections are refused, then it "recovers".
  injector.add_rule({FaultOp::kConnect, FaultKind::kConnectRefused, b.port(),
                     1.0, /*max=*/2, 0.0});
  ScopedFaultInjection active(injector);

  // Two consecutive failures cross the threshold: b is quarantined.
  EXPECT_EQ(fetch(a.port(), o1, 64).cache, "MISS");
  EXPECT_EQ(fetch(a.port(), o2, 64).cache, "MISS");
  {
    const auto s = a.stats();
    EXPECT_EQ(s.peer_failures, 2u);
    EXPECT_EQ(s.quarantines, 1u);
  }

  // Inside the window the hinted probe is skipped outright: origin-direct
  // degradation at full speed.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(fetch(a.port(), o3, 64).cache, "MISS");
  EXPECT_LT(seconds_since(start), ca.peer_deadline_seconds);
  EXPECT_EQ(a.stats().quarantine_skips, 1u);

  // After the window one re-probe is admitted; b is healthy again (the
  // injection budget is spent), so it serves and rejoins.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  EXPECT_EQ(fetch(a.port(), o4, 64).cache, "SIBLING");
  {
    const auto s = a.stats();
    EXPECT_EQ(s.reprobes, 1u);
    EXPECT_EQ(s.sibling_hits, 1u);
  }
  // Fully rejoined: no quarantine bookkeeping left for the next probe.
  fetch(b.port(), ObjectId{85}, 64);
  b.flush_hints();
  EXPECT_EQ(fetch(a.port(), ObjectId{85}, 64).cache, "SIBLING");
}

TEST(FaultPathTest, StopJoinsInFlightHandlers) {
  // Regression: handlers used to run on detached threads, so destroying the
  // daemon while a slow request was in flight let the handler dereference
  // freed members (caught under ASan). The worker pool joins in stop().
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  auto proxy = std::make_unique<ProxyServer>(cfg);
  const std::uint16_t port = proxy->port();

  FaultInjector injector(9);
  // Slow the origin connect so the fetch is reliably mid-flight when the
  // daemon is destroyed.
  injector.add_rule(
      {FaultOp::kConnect, FaultKind::kDelay, origin.port(), 1.0, -1, 0.3});
  ScopedFaultInjection active(injector);

  std::thread client([port] { fetch(port, ObjectId{81}, 64); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  proxy.reset();  // ~ProxyServer → stop(): must join the in-flight handler
  client.join();
}

TEST(ProxyServerTest, FlusherSendsOnSizeTrigger) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  cb.flush_max_pending = 2;  // the second queued inform arms the flusher
  ProxyServer b(cb);

  const ObjectId first{91}, second{92};
  fetch(b.port(), first, 64);
  fetch(b.port(), second, 64);

  // No manual flush_hints(): the flusher thread must drain the batch.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.stats().updates_received < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(a.stats().updates_received, 2u);
  EXPECT_GE(b.stats().flushes, 1u);
  EXPECT_EQ(fetch(a.port(), first, 64).cache, "SIBLING");
}

TEST(ProxyServerTest, FlusherSendsOnAgeTrigger) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  cb.flush_interval_seconds = 0.05;  // one pending update flushes by age
  ProxyServer b(cb);

  const ObjectId id{93};
  fetch(b.port(), id, 64);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.stats().updates_received < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(a.stats().updates_received, 1u);
  EXPECT_EQ(fetch(a.port(), id, 64).cache, "SIBLING");
}

TEST(ProxyServerTest, CoalescingRetiresInformInvalidatePairs) {
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb;
  cb.name = "b";
  cb.origin_port = origin.port();
  cb.hint_neighbors = {a.port()};
  cb.capacity_bytes = 150;  // tiny: the second object evicts the first
  ProxyServer b(cb);

  const ObjectId first{94}, second{95};
  fetch(b.port(), first, 100);
  fetch(b.port(), second, 100);  // evicts `first`
  // Queued: inform(first), inform(second), invalidate(first). The flush must
  // retire the inform/invalidate pair for `first` and send only one update.
  b.flush_hints();

  const auto sb = b.stats();
  EXPECT_EQ(sb.updates_coalesced, 2u);
  EXPECT_EQ(sb.updates_sent, 1u);
  EXPECT_EQ(a.stats().updates_received, 1u);

  // Behaviour matches the uncoalesced exchange: no stale hint for `first`,
  // and the hint for `second` works.
  EXPECT_EQ(fetch(a.port(), first, 100).cache, "MISS");
  EXPECT_EQ(a.stats().false_positives, 0u);
  EXPECT_EQ(fetch(a.port(), second, 100).cache, "SIBLING");
}

TEST(ProxyServerTest, ConcurrentFetchesFromBothSides) {
  // a and b each serve a request that fetches from the *other* proxy; with
  // single-threaded daemons this would deadlock.
  OriginServer origin;
  ProxyConfig ca;
  ca.name = "a";
  ca.origin_port = origin.port();
  ProxyServer a(ca);
  ProxyConfig cb = ca;
  cb.name = "b";
  ProxyServer b(cb);
  a.add_hint_neighbor(b.port());
  b.add_hint_neighbor(a.port());

  const ObjectId x{41}, y{42};
  fetch(a.port(), x, 64);
  fetch(b.port(), y, 64);
  a.flush_hints();
  b.flush_hints();

  std::thread t1([&] { EXPECT_EQ(fetch(b.port(), x, 64).cache, "SIBLING"); });
  std::thread t2([&] { EXPECT_EQ(fetch(a.port(), y, 64).cache, "SIBLING"); });
  t1.join();
  t2.join();
}

// --- GET /metrics ---

std::optional<HttpResponse> scrape(std::uint16_t port,
                                   const std::string& target = "/metrics") {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return http_call(port, req);
}

TEST(ProxyMetricsTest, TextScrapeCarriesEveryProxyCounter) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  const ObjectId id{11};
  fetch(proxy.port(), id, 100);  // MISS
  fetch(proxy.port(), id, 100);  // HIT

  auto resp = scrape(proxy.port());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->header("Content-Type").value_or(""),
            "text/plain; version=0.0.4");
  // Every field of the former ProxyStats struct appears, '.' -> '_'.
  for (const char* name :
       {"requests", "local_hits", "sibling_hits", "origin_fetches",
        "false_positives", "peer_serves", "peer_rejects", "updates_sent",
        "updates_received", "update_bytes_sent", "updates_coalesced",
        "flushes", "pushes_sent",
        "pushes_received", "push_bytes_sent", "peer_failures",
        "origin_failures", "quarantines", "quarantine_skips", "reprobes",
        "metadata_retries", "updates_deduped", "updates_hop_capped"}) {
    EXPECT_NE(resp->body.str().find(std::string("bh_proxy_") + name),
              std::string::npos)
        << "missing counter: " << name;
  }
  EXPECT_NE(resp->body.str().find("bh_proxy_requests 2"), std::string::npos);
  EXPECT_NE(resp->body.str().find("bh_proxy_local_hits 1"), std::string::npos);
  EXPECT_NE(resp->body.str().find("bh_proxy_origin_fetches 1"), std::string::npos);
  // Scrape-time gauges and the latency summary ride along.
  EXPECT_NE(resp->body.str().find("bh_proxy_cache_objects 1"), std::string::npos);
  EXPECT_NE(resp->body.str().find("bh_proxy_request_ms_count 2"), std::string::npos);
}

TEST(ProxyMetricsTest, JsonScrapeParsesAndMatchesStats) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  const ObjectId id{12};
  fetch(proxy.port(), id, 80);
  fetch(proxy.port(), id, 80);
  fetch(proxy.port(), ObjectId{13}, 80);

  auto resp = scrape(proxy.port(), "/metrics?format=json");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->header("Content-Type").value_or(""), "application/json");
  const auto snap = obs::parse_snapshot(resp->body.str());
  ASSERT_TRUE(snap.has_value());

  const ProxyStats s = proxy.stats();
  EXPECT_EQ(snap->counter("bh.proxy.requests"), s.requests);
  EXPECT_EQ(snap->counter("bh.proxy.local_hits"), s.local_hits);
  EXPECT_EQ(snap->counter("bh.proxy.origin_fetches"), s.origin_fetches);
  EXPECT_EQ(snap->counter("bh.proxy.requests"), 3u);
  EXPECT_DOUBLE_EQ(snap->gauge("bh.proxy.cache_objects"), 2.0);
  ASSERT_NE(snap->histogram("bh.proxy.request_ms"), nullptr);
  EXPECT_EQ(snap->histogram("bh.proxy.request_ms")->count(), 3u);
}

TEST(ProxyMetricsTest, ConcurrentScrapesDuringTraffic) {
  // Scrapers hammer /metrics (both renderings) while fetchers drive the data
  // path; the registry's atomics and the scrape-time gauge refresh must not
  // race (ASan/TSan builds of this binary check that) and every scrape must
  // return a complete document.
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  constexpr int kFetches = 40;
  std::thread traffic([&] {
    for (int i = 0; i < kFetches; ++i) {
      fetch(proxy.port(), ObjectId{std::uint64_t(100 + i)}, 64);
    }
  });
  std::thread text_scraper([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = scrape(proxy.port());
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->status, 200);
      EXPECT_NE(r->body.str().find("bh_proxy_requests"), std::string::npos);
    }
  });
  std::thread json_scraper([&] {
    for (int i = 0; i < 20; ++i) {
      auto r = scrape(proxy.port(), "/metrics?format=json");
      ASSERT_TRUE(r.has_value());
      ASSERT_TRUE(obs::parse_snapshot(r->body.str()).has_value());
    }
  });
  traffic.join();
  text_scraper.join();
  json_scraper.join();

  auto final_scrape = scrape(proxy.port(), "/metrics?format=json");
  ASSERT_TRUE(final_scrape.has_value());
  const auto snap = obs::parse_snapshot(final_scrape->body.str());
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->counter("bh.proxy.requests"), std::uint64_t(kFetches));
  EXPECT_EQ(snap->counter("bh.proxy.origin_fetches"),
            std::uint64_t(kFetches));
}

// --- keep-alive and the reactor data path ---

TEST(ProxyKeepAliveTest, OneConnectionServesManyRequests) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  auto conn = ClientConnection::open(proxy.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  const ObjectId id{77};
  for (int i = 0; i < 6; ++i) {
    HttpRequest req;
    req.method = "GET";
    req.target = object_path(id, 256);
    auto resp = conn->exchange(
        req, std::chrono::steady_clock::now() + std::chrono::seconds(5),
        /*keep_alive=*/true);
    ASSERT_TRUE(resp.has_value()) << "request " << i;
    EXPECT_EQ(resp->status, 200);
    EXPECT_TRUE(conn->reusable());
    EXPECT_EQ(resp->header("X-Cache").value_or(""), i == 0 ? "MISS" : "HIT");
    EXPECT_EQ(resp->body, origin_body(id, 1, 256));
  }
  const ProxyStats s = proxy.stats();
  EXPECT_EQ(s.requests, 6u);
  EXPECT_EQ(s.local_hits, 5u);
  EXPECT_EQ(s.origin_fetches, 1u);
}

TEST(ProxyKeepAliveTest, ReactorAndPoolMetricsExported) {
  OriginServer origin;
  ProxyConfig cfg;
  cfg.origin_port = origin.port();
  ProxyServer proxy(cfg);

  // Two distinct misses: the second origin fetch rides the pooled
  // connection the first one parked.
  fetch(proxy.port(), ObjectId{21}, 64);
  fetch(proxy.port(), ObjectId{22}, 64);

  auto resp = scrape(proxy.port(), "/metrics?format=json");
  ASSERT_TRUE(resp.has_value());
  const auto snap = obs::parse_snapshot(resp->body.str());
  ASSERT_TRUE(snap.has_value());
  EXPECT_GE(snap->counter("bh.proxy.loop_iterations"), 1u);
  EXPECT_GE(snap->counter("bh.proxy.pool_reuse"), 1u);
  EXPECT_GE(snap->gauge("bh.proxy.pool_idle"), 1.0);
  // The scraping connection itself is open at sample time.
  EXPECT_GE(snap->gauge("bh.proxy.open_conns"), 1.0);

  auto text = scrape(proxy.port());
  ASSERT_TRUE(text.has_value());
  for (const char* name :
       {"bh_proxy_open_conns", "bh_proxy_pool_reuse",
        "bh_proxy_loop_iterations", "bh_proxy_queue_depth",
        "bh_proxy_pool_idle"}) {
    EXPECT_NE(text->body.str().find(name), std::string::npos)
        << "missing metric: " << name;
  }
}

}  // namespace
}  // namespace bh::proxy
