// Tests for the Plaxton randomized tree embedding: unique converging roots,
// load distribution, locality of low-level parents, and small disturbance
// under churn.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/hash.h"
#include "net/topology.h"
#include "plaxton/plaxton.h"

namespace bh::plaxton {
namespace {

DistanceFn lca_distance(const net::HierarchyTopology& topo) {
  return [topo](NodeIndex a, NodeIndex b) {
    return static_cast<double>(topo.lca_level(a, b));
  };
}

struct Mesh {
  net::HierarchyTopology topo{64, 8, 256};
  PlaxtonMesh mesh;

  explicit Mesh(PlaxtonConfig cfg = {})
      : mesh(ids_for_topology(64, /*seed=*/7), lca_distance(topo), cfg) {}
};

TEST(PlaxtonTest, RejectsBadConstruction) {
  EXPECT_THROW(PlaxtonMesh({}, nullptr), std::invalid_argument);
  EXPECT_THROW(PlaxtonMesh({1, 1}, [](NodeIndex, NodeIndex) { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(PlaxtonMesh({1, 2}, [](NodeIndex, NodeIndex) { return 1.0; },
                           PlaxtonConfig{0}),
               std::invalid_argument);
}

TEST(PlaxtonTest, SingleNodeIsAlwaysRoot) {
  PlaxtonMesh m({42}, [](NodeIndex, NodeIndex) { return 1.0; });
  EXPECT_EQ(m.root_of(123456), 0u);
  EXPECT_EQ(m.route(0, 99).size(), 1u);
}

TEST(PlaxtonTest, AllStartsConvergeToSameRoot) {
  Mesh m;
  for (std::uint64_t o = 0; o < 200; ++o) {
    const std::uint64_t oid = mix64(o + 1);
    const NodeIndex root = m.mesh.route(0, oid).back();
    for (NodeIndex start = 1; start < 64; start += 7) {
      EXPECT_EQ(m.mesh.route(start, oid).back(), root)
          << "object " << o << " start " << start;
    }
  }
}

TEST(PlaxtonTest, RouteFromRootStaysAtRoot) {
  Mesh m;
  for (std::uint64_t o = 0; o < 50; ++o) {
    const std::uint64_t oid = mix64(o + 777);
    const NodeIndex root = m.mesh.root_of(oid);
    EXPECT_EQ(m.mesh.route(root, oid).back(), root);
  }
}

TEST(PlaxtonTest, LoadIsSpreadAcrossRoots) {
  Mesh m;
  std::map<NodeIndex, int> load;
  const int kObjects = 6400;
  for (int o = 0; o < kObjects; ++o) {
    ++load[m.mesh.root_of(mix64(static_cast<std::uint64_t>(o) + 31))];
  }
  // Each of the 64 nodes should root roughly 1/64th of objects. Allow a wide
  // band: no node may root more than 5x its fair share, and at least half
  // the nodes must root something.
  EXPECT_GE(load.size(), 32u);
  for (const auto& [node, count] : load) {
    EXPECT_LT(count, kObjects / 64 * 5) << "node " << node;
  }
}

TEST(PlaxtonTest, RoutesAreShort) {
  Mesh m;
  for (std::uint64_t o = 0; o < 100; ++o) {
    const auto path = m.mesh.route(o % 64, mix64(o + 5));
    // 64 nodes, binary digits: expected path length ~log2(64) = 6, certainly
    // far below the node count.
    EXPECT_LE(path.size(), 16u);
  }
}

TEST(PlaxtonTest, LowLevelHopsAreLocalOnAverage) {
  Mesh m;
  double first_hop = 0, last_hop = 0;
  int firsts = 0, lasts = 0;
  for (std::uint64_t o = 0; o < 500; ++o) {
    const auto path = m.mesh.route(static_cast<NodeIndex>(o % 64), mix64(o));
    if (path.size() < 3) continue;
    first_hop += m.topo.lca_level(path[0], path[1]);
    ++firsts;
    last_hop += m.topo.lca_level(path[path.size() - 2], path.back());
    ++lasts;
  }
  ASSERT_GT(firsts, 50);
  // Early hops pick among many candidates and can stay near; late hops have
  // few eligible parents and roam the whole system.
  EXPECT_LT(first_hop / firsts, last_hop / lasts);
}

TEST(PlaxtonTest, HigherArityShortensRoutes) {
  Mesh binary(PlaxtonConfig{1});
  Mesh quad(PlaxtonConfig{2});
  double len1 = 0, len2 = 0;
  for (std::uint64_t o = 0; o < 200; ++o) {
    len1 += static_cast<double>(binary.mesh.route(0, mix64(o + 9)).size());
    len2 += static_cast<double>(quad.mesh.route(0, mix64(o + 9)).size());
  }
  EXPECT_LT(len2, len1);
}

TEST(PlaxtonTest, RemovalReassignsItsObjects) {
  Mesh m;
  std::vector<std::uint64_t> oids;
  std::vector<NodeIndex> roots_before;
  for (std::uint64_t o = 0; o < 1000; ++o) {
    oids.push_back(mix64(o + 13));
    roots_before.push_back(m.mesh.root_of(oids.back()));
  }
  const NodeIndex victim = roots_before[0];
  m.mesh.remove_node(victim);
  EXPECT_FALSE(m.mesh.alive(victim));

  int changed = 0;
  for (std::size_t i = 0; i < oids.size(); ++i) {
    const NodeIndex root = m.mesh.root_of(oids[i]);
    EXPECT_NE(root, victim);
    if (root != roots_before[i]) ++changed;
  }
  // Only objects rooted at (or routed through) the victim move: the
  // disturbance is a small fraction of the namespace.
  EXPECT_GT(changed, 0);
  EXPECT_LT(changed, static_cast<int>(oids.size()) / 4);

  // Re-adding restores the original assignment exactly.
  m.mesh.add_node(victim);
  for (std::size_t i = 0; i < oids.size(); ++i) {
    EXPECT_EQ(m.mesh.root_of(oids[i]), roots_before[i]);
  }
}

TEST(PlaxtonTest, CannotRemoveLastNode) {
  PlaxtonMesh m({5}, [](NodeIndex, NodeIndex) { return 1.0; });
  EXPECT_THROW(m.remove_node(0), std::logic_error);
}

TEST(PlaxtonTest, RouteFromDeadNodeThrows) {
  Mesh m;
  m.mesh.remove_node(3);
  EXPECT_THROW(m.mesh.route(3, 1234), std::invalid_argument);
}

TEST(PlaxtonTest, IdsForTopologyAreUniqueAndDeterministic) {
  const auto a = ids_for_topology(256, 11);
  const auto b = ids_for_topology(256, 11);
  EXPECT_EQ(a, b);
  std::set<std::uint64_t> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 256u);
  const auto c = ids_for_topology(256, 12);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace bh::plaxton
