// Tests for bh::common — MD5, hashing, RNG, Zipf sampling, node sets, and
// table formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/hash.h"
#include "common/md5.h"
#include "common/node_set.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/types.h"
#include "common/zipf.h"

namespace bh {
namespace {

// --- MD5 (RFC 1321 appendix test vectors) ---

TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(Md5::digest("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(Md5::digest("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(Md5::digest("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(Md5::digest("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(Md5::digest("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::hex(Md5::digest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopq"
                                 "rstuvwxyz0123456789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex(Md5::digest(
                "1234567890123456789012345678901234567890123456789012345678"
                "9012345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalUpdateMatchesOneShot) {
  const std::string msg =
      "the quick brown fox jumps over the lazy dog repeatedly and at length "
      "so that the message spans multiple 64-byte blocks in the md5 stream";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Md5 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(Md5::hex(h.finish()), Md5::hex(Md5::digest(msg)));
  }
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 56-byte padding boundary and the 64-byte block size.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Md5 a;
    a.update(msg);
    Md5 b;
    for (char c : msg) b.update(&c, 1);
    EXPECT_EQ(Md5::hex(a.finish()), Md5::hex(b.finish())) << "len=" << len;
  }
}

TEST(Md5Test, ObjectIdsDifferAcrossUrls) {
  const ObjectId a = object_id_from_url("http://example.com/a");
  const ObjectId b = object_id_from_url("http://example.com/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, object_id_from_url("http://example.com/a"));
}

TEST(UrlDigestCacheTest, AgreesWithUncachedDigest) {
  UrlDigestCache cache(64);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::string url = "http://example.com/obj/" + std::to_string(i);
      EXPECT_EQ(cache.object_id(url), object_id_from_url(url)) << url;
    }
  }
  // 500 URLs over 64 slots: plenty of collision-evictions, yet every answer
  // above matched the direct digest.
  EXPECT_GT(cache.misses(), 0u);
}

TEST(UrlDigestCacheTest, RepeatsHitTheMemo) {
  UrlDigestCache cache(256);
  const std::string url = "http://example.com/popular";
  const ObjectId first = cache.object_id(url);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cache.object_id(url), first);
  EXPECT_EQ(cache.hits(), 10u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(UrlDigestCacheTest, EmptyUrlNeverFalselyHits) {
  UrlDigestCache cache(16);
  // An empty URL maps to a vacant-looking slot; it must still be served by
  // recomputation, not a stale id.
  EXPECT_EQ(cache.object_id(""), object_id_from_url(""));
  EXPECT_EQ(cache.object_id(""), object_id_from_url(""));
  EXPECT_EQ(cache.hits(), 0u);
}

// --- hashing ---

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(HashTest, Mix64IsBijectiveOnSample) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

// --- RNG ---

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, LognormalMedian) {
  Rng r(13);
  std::vector<double> v(100001);
  for (auto& x : v) x = r.lognormal(8.3, 1.3);
  std::nth_element(v.begin(), v.begin() + 50000, v.end());
  // Median of lognormal(mu, sigma) is exp(mu) ~= 4024.
  EXPECT_NEAR(v[50000], std::exp(8.3), std::exp(8.3) * 0.05);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

// --- Zipf ---

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
}

TEST(ZipfTest, SingleElement) {
  ZipfSampler z(1, 0.8);
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(r), 0u);
}

TEST(ZipfTest, RanksWithinBounds) {
  ZipfSampler z(1000, 0.8);
  Rng r(17);
  for (int i = 0; i < 100000; ++i) ASSERT_LT(z.sample(r), 1000u);
}

// The empirical rank frequencies must follow rank^-s: check the ratio of
// rank-0 to rank-9 frequencies against the analytic value.
TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  const double s = 1.0;
  ZipfSampler z(100000, s);
  Rng r(23);
  std::vector<std::uint64_t> counts(16, 0);
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = z.sample(r);
    if (k < counts.size()) ++counts[k];
  }
  const double ratio = static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, std::pow(10.0, s), std::pow(10.0, s) * 0.1);
}

TEST(ZipfTest, LowerExponentIsFlatter) {
  ZipfSampler steep(10000, 1.2), flat(10000, 0.5);
  Rng r1(29), r2(29);
  std::uint64_t head_steep = 0, head_flat = 0;
  for (int i = 0; i < 200000; ++i) {
    head_steep += steep.sample(r1) < 10;
    head_flat += flat.sample(r2) < 10;
  }
  EXPECT_GT(head_steep, head_flat);
}

// --- NodeSet ---

TEST(NodeSetTest, InsertEraseContains) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(64);
  s.insert(200);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(200));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 3u);
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.size(), 2u);
}

TEST(NodeSetTest, ForEachVisitsInOrder) {
  NodeSet s;
  s.insert(100);
  s.insert(1);
  s.insert(65);
  std::vector<NodeIndex> seen;
  s.for_each([&](NodeIndex n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<NodeIndex>{1, 65, 100}));
}

TEST(NodeSetTest, EqualityIgnoresCapacity) {
  NodeSet a, b;
  a.insert(5);
  a.insert(300);
  a.erase(300);
  b.insert(5);
  EXPECT_TRUE(a == b);
}

TEST(NodeSetTest, InsertIsIdempotent) {
  NodeSet s;
  s.insert(7);
  s.insert(7);
  EXPECT_EQ(s.size(), 1u);
}

// --- units & ids ---

TEST(TypesTest, ByteLiterals) {
  EXPECT_EQ(4_KB, 4096u);
  EXPECT_EQ(1_MB, 1048576u);
  EXPECT_EQ(2_GB, 2147483648u);
}

TEST(TypesTest, StrongIdsCompare) {
  EXPECT_EQ(ObjectId{1}, ObjectId{1});
  EXPECT_NE(ObjectId{1}, ObjectId{2});
  EXPECT_LT(MachineId{1}, MachineId{2});
}

// --- table formatting ---

TEST(TableTest, AlignsAndRejectsBadArity) {
  TextTable t({"a", "long-header"});
  t.add_row({"x", "y"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(fmt(1.25, 1), "1.2");
  EXPECT_EQ(fmt(1.25, 2), "1.25");
  EXPECT_EQ(fmt_count(22100000), "22.1M");
  EXPECT_EQ(fmt_count(4150), "4.2K");
  EXPECT_EQ(fmt_count(12), "12");
}

}  // namespace
}  // namespace bh
