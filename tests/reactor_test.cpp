// Tests for the reactor core: the timer wheel's ordering and cancellation,
// the loop's cross-thread post/wakeup contract, and the HttpLoop connection
// state machine (keep-alive, pipelining, 400-on-junk) driven over real
// loopback sockets. Everything that touches the loop runs against every
// available I/O backend (epoll always; io_uring when the kernel supports
// it), so both implementations are held to the same observable contract.
#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "proxy/conn_pool.h"
#include "proxy/http.h"
#include "proxy/io_backend.h"
#include "proxy/reactor.h"
#include "proxy/socket.h"

namespace bh::proxy {
namespace {

using Clock = std::chrono::steady_clock;

// The backends available on this machine. Epoll always works; io_uring is
// probed once, and when absent the suite says so explicitly rather than
// silently shrinking.
std::vector<IoBackendKind> test_backends() {
  std::vector<IoBackendKind> kinds{IoBackendKind::kEpoll};
  std::string why;
  if (io_uring_supported(&why)) {
    kinds.push_back(IoBackendKind::kIoUring);
  } else {
    static const bool logged = [&why] {
      std::fprintf(stderr,
                   "io_uring unavailable (%s): reactor tests run on epoll "
                   "only\n",
                   why.c_str());
      return true;
    }();
    (void)logged;
  }
  return kinds;
}

class BackendParamTest : public ::testing::TestWithParam<IoBackendKind> {};

using ReactorBackendTest = BackendParamTest;
using HttpLoopBackendTest = BackendParamTest;
using ConnectionPoolBackendTest = BackendParamTest;

std::string backend_param_name(
    const ::testing::TestParamInfo<IoBackendKind>& info) {
  return io_backend_kind_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackendTest,
                         ::testing::ValuesIn(test_backends()),
                         backend_param_name);
INSTANTIATE_TEST_SUITE_P(Backends, HttpLoopBackendTest,
                         ::testing::ValuesIn(test_backends()),
                         backend_param_name);
INSTANTIATE_TEST_SUITE_P(Backends, ConnectionPoolBackendTest,
                         ::testing::ValuesIn(test_backends()),
                         backend_param_name);

TEST(TimerWheelTest, FiresInDueOrder) {
  TimerWheel wheel(/*tick_seconds=*/0.001, /*slots=*/16);
  const auto now = Clock::now();
  std::vector<int> fired;
  wheel.add(now, 0.030, [&] { fired.push_back(3); });
  wheel.add(now, 0.010, [&] { fired.push_back(1); });
  wheel.add(now, 0.020, [&] { fired.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);

  wheel.advance(now + std::chrono::milliseconds(15));
  ASSERT_EQ(fired, (std::vector<int>{1}));
  wheel.advance(now + std::chrono::milliseconds(35));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(0.001, 16);
  const auto now = Clock::now();
  bool fired = false;
  const std::uint64_t id = wheel.add(now, 0.005, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already gone
  wheel.advance(now + std::chrono::milliseconds(50));
  EXPECT_FALSE(fired);
}

TEST(TimerWheelTest, NextDelayReflectsEarliestTimer) {
  TimerWheel wheel(0.001, 16);
  const auto now = Clock::now();
  EXPECT_EQ(wheel.next_delay_ms(now), -1);
  wheel.add(now, 0.100, [] {});
  wheel.add(now, 0.020, [] {});
  const int delay = wheel.next_delay_ms(now);
  EXPECT_GT(delay, 0);
  EXPECT_LE(delay, 25);
  EXPECT_EQ(wheel.next_delay_ms(now + std::chrono::milliseconds(30)), 0);
}

TEST(TimerWheelTest, LongGapStillFiresEverything) {
  // More elapsed ticks than the wheel has slots: one advance must still
  // fire every due entry exactly once.
  TimerWheel wheel(0.001, /*slots=*/8);
  const auto now = Clock::now();
  int fired = 0;
  for (int i = 1; i <= 20; ++i) {
    wheel.add(now, 0.001 * i, [&] { ++fired; });
  }
  wheel.advance(now + std::chrono::seconds(1));
  EXPECT_EQ(fired, 20);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CallbackMayRescheduleItself) {
  TimerWheel wheel(0.001, 16);
  const auto t0 = Clock::now();
  int fires = 0;
  std::function<void()> again = [&] {
    if (++fires < 3) {
      wheel.add(Clock::now(), 0.001, again);
    }
  };
  wheel.add(t0, 0.001, again);
  for (int step = 1; step <= 10; ++step) {
    wheel.advance(t0 + std::chrono::milliseconds(step * 5));
  }
  EXPECT_EQ(fires, 3);
}

TEST_P(ReactorBackendTest, PostRunsOnLoopThreadAndStopExits) {
  Reactor reactor(GetParam());
  std::thread loop([&] { reactor.run(); });

  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  reactor.post([&] {
    on_loop.store(reactor.on_loop_thread());
    ran.store(true);
  });
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (!ran.load() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(on_loop.load());
  EXPECT_FALSE(reactor.on_loop_thread());  // we are not the loop
  EXPECT_GE(reactor.iterations(), 1u);

  reactor.stop();
  loop.join();
}

TEST_P(ReactorBackendTest, TimersFireOnTheLoop) {
  Reactor reactor(GetParam());
  std::thread loop([&] { reactor.run(); });
  std::atomic<int> fired{0};
  reactor.post([&] {
    reactor.timers().add(Clock::now(), 0.005, [&] { fired.fetch_add(1); });
    reactor.timers().add(Clock::now(), 0.010, [&] { fired.fetch_add(1); });
  });
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (fired.load() < 2 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 2);
  reactor.stop();
  loop.join();
}

// An HttpLoop echo server on a background reactor thread: responds with the
// request body reversed, so the client can verify which request produced
// which response.
class EchoServer {
 public:
  explicit EchoServer(IoBackendKind backend = IoBackendKind::kEpoll) {
    listener_ = TcpListener::bind_ephemeral();
    EXPECT_TRUE(listener_.has_value());
    reactor_ = std::make_unique<Reactor>(backend);
    HttpLoop::Options opts;
    opts.idle_timeout_seconds = 30.0;
    loop_ = std::make_unique<HttpLoop>(
        *reactor_, listener_->fd(), opts,
        [this](std::uint64_t token, HttpRequest req) {
          HttpResponse resp;
          resp.body = std::string(req.body.rbegin(), req.body.rend());
          resp.headers.emplace_back("X-Target", req.target);
          loop_->respond(token, std::move(resp));
        });
    thread_ = std::thread([this] { reactor_->run(); });
  }

  ~EchoServer() {
    reactor_->stop();
    thread_.join();
    loop_->shutdown();
  }

  std::uint16_t port() const { return listener_->port(); }
  std::size_t open_connections() const { return loop_->open_connections(); }

 private:
  std::optional<TcpListener> listener_;
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<HttpLoop> loop_;
  std::thread thread_;
};

TEST_P(HttpLoopBackendTest, KeepAliveServesManyExchangesOnOneConnection) {
  EchoServer server(GetParam());
  auto conn = ClientConnection::open(server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  for (int i = 0; i < 10; ++i) {
    HttpRequest req;
    req.method = "POST";
    req.target = "/echo/" + std::to_string(i);
    req.body = "payload-" + std::to_string(i);
    const auto deadline = Clock::now() + std::chrono::seconds(2);
    auto resp = conn->exchange(req, deadline, /*keep_alive=*/true);
    ASSERT_TRUE(resp.has_value()) << "exchange " << i;
    EXPECT_EQ(resp->status, 200);
    EXPECT_TRUE(conn->reusable());
    std::string expect = req.body;
    std::reverse(expect.begin(), expect.end());
    EXPECT_EQ(resp->body, expect);
    EXPECT_EQ(resp->header("X-Target").value_or(""), req.target);
  }
  // Ten exchanges, one connection.
  EXPECT_EQ(server.open_connections(), 1u);
}

TEST_P(HttpLoopBackendTest, WithoutKeepAliveServerCloses) {
  EchoServer server(GetParam());
  auto conn = ClientConnection::open(server.port(), 1.0);
  ASSERT_TRUE(conn.has_value());
  HttpRequest req;
  req.method = "GET";
  req.target = "/once";
  auto resp =
      conn->exchange(req, Clock::now() + std::chrono::seconds(2),
                     /*keep_alive=*/false);
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(conn->reusable());
  EXPECT_EQ(resp->header("Connection").value_or(""), "close");
}

TEST_P(HttpLoopBackendTest, PipelinedRequestsAnsweredInOrder) {
  EchoServer server(GetParam());
  auto stream = TcpStream::connect(server.port(), 1.0);
  ASSERT_TRUE(stream.has_value());

  // Three requests in a single write; responses must come back in order.
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    HttpRequest req;
    req.method = "POST";
    req.target = "/p/" + std::to_string(i);
    req.headers.emplace_back("Connection", "keep-alive");
    req.body = "req" + std::to_string(i);
    wire += serialize(req);
  }
  ASSERT_TRUE(stream->write_all(wire));

  HttpParser parser(HttpParser::Kind::kResponse);
  std::string pending;
  int got = 0;
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (got < 3 && Clock::now() < deadline) {
    if (pending.empty()) {
      auto chunk = stream->read_some(4096);
      ASSERT_TRUE(chunk.has_value());
      ASSERT_FALSE(chunk->empty()) << "server closed early";
      pending += *chunk;
    }
    const std::size_t used = parser.feed(pending);
    pending.erase(0, used);
    ASSERT_FALSE(parser.failed());
    if (parser.complete()) {
      EXPECT_EQ(parser.response().header("X-Target").value_or(""),
                "/p/" + std::to_string(got));
      std::string expect = "req" + std::to_string(got);
      std::reverse(expect.begin(), expect.end());
      EXPECT_EQ(parser.response().body, expect);
      parser.reset();
      ++got;
    }
  }
  EXPECT_EQ(got, 3);
}

// Responses released out of request order (worst case: all in reverse) must
// still reach the wire in request order — the loop's sequencing, not the
// responder's timing, decides the output order.
TEST_P(HttpLoopBackendTest, OutOfOrderRespondsAreResequenced) {
  std::optional<TcpListener> listener = TcpListener::bind_ephemeral();
  ASSERT_TRUE(listener.has_value());
  Reactor reactor(GetParam());
  std::vector<std::pair<std::uint64_t, std::string>> parked;
  std::unique_ptr<HttpLoop> loop;
  loop = std::make_unique<HttpLoop>(
      reactor, listener->fd(), HttpLoop::Options{},
      [&](std::uint64_t token, HttpRequest req) {
        // Park until all three arrive, then answer newest-first.
        parked.emplace_back(token, req.target);
        if (parked.size() < 3) return;
        for (auto it = parked.rbegin(); it != parked.rend(); ++it) {
          HttpResponse resp;
          resp.body = "resp:" + it->second;
          loop->respond(it->first, std::move(resp));
        }
        parked.clear();
      });
  std::thread t([&] { reactor.run(); });

  auto stream = TcpStream::connect(listener->port(), 1.0);
  ASSERT_TRUE(stream.has_value());
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    HttpRequest req;
    req.method = "GET";
    req.target = "/ooo/" + std::to_string(i);
    req.headers.emplace_back("Connection", "keep-alive");
    wire += serialize(req);
  }
  ASSERT_TRUE(stream->write_all(wire));

  HttpParser parser(HttpParser::Kind::kResponse);
  std::string pending;
  int got = 0;
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (got < 3 && Clock::now() < deadline) {
    if (pending.empty()) {
      auto chunk = stream->read_some(4096);
      ASSERT_TRUE(chunk.has_value());
      ASSERT_FALSE(chunk->empty()) << "server closed early";
      pending += *chunk;
    }
    const std::size_t used = parser.feed(pending);
    pending.erase(0, used);
    ASSERT_FALSE(parser.failed());
    if (parser.complete()) {
      EXPECT_EQ(parser.response().body, "resp:/ooo/" + std::to_string(got));
      parser.reset();
      ++got;
    }
  }
  EXPECT_EQ(got, 3);

  reactor.stop();
  t.join();
  loop->shutdown();
}

TEST_P(HttpLoopBackendTest, MalformedRequestGets400AndClose) {
  EchoServer server(GetParam());
  auto stream = TcpStream::connect(server.port(), 1.0);
  ASSERT_TRUE(stream.has_value());
  ASSERT_TRUE(stream->write_all("this is not http\r\n\r\n"));
  const auto raw = stream->read_to_end();
  ASSERT_TRUE(raw.has_value());
  const auto resp = parse_response(*raw);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(resp->header("Connection").value_or(""), "close");
}

TEST_P(HttpLoopBackendTest, IdleConnectionsAreSweptOut) {
  std::optional<TcpListener> listener = TcpListener::bind_ephemeral();
  ASSERT_TRUE(listener.has_value());
  Reactor reactor(GetParam());
  HttpLoop::Options opts;
  opts.idle_timeout_seconds = 0.2;  // sweep interval floors at 50 ms
  HttpLoop loop(reactor, listener->fd(), opts,
                [&](std::uint64_t token, HttpRequest) {
                  loop.respond(token, HttpResponse{});
                });
  std::thread t([&] { reactor.run(); });

  auto stream = TcpStream::connect(listener->port(), 1.0);
  ASSERT_TRUE(stream.has_value());
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (loop.open_connections() == 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(loop.open_connections(), 1u);
  // Send nothing: the sweep must close the connection, observed as EOF.
  stream->set_timeout(4.0);
  const auto chunk = stream->read_some();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_TRUE(chunk->empty());
  while (loop.open_connections() != 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(loop.open_connections(), 0u);

  reactor.stop();
  t.join();
  loop.shutdown();
}

TEST_P(ConnectionPoolBackendTest, PooledCallReusesParkedConnection) {
  EchoServer server(GetParam());
  ConnectionPool pool;
  HttpRequest req;
  req.method = "POST";
  req.target = "/pooled";
  req.body = "abc";
  CallOptions opts;
  opts.deadline_seconds = 2.0;

  auto first = http_call(pool, server.port(), req, opts);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body, "cba");
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);

  auto second = http_call(pool, server.port(), req, opts);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.idle_count(), 1u);
  // Both calls rode one server-side connection.
  EXPECT_EQ(server.open_connections(), 1u);
}

TEST_P(ConnectionPoolBackendTest, StaleParkedConnectionRetriesFresh) {
  ConnectionPool pool;
  std::uint16_t port = 0;
  {
    // Park a connection, then kill the server: the parked stream is stale.
    EchoServer server(GetParam());
    port = server.port();
    HttpRequest req;
    req.method = "GET";
    req.target = "/x";
    CallOptions opts;
    opts.deadline_seconds = 2.0;
    ASSERT_TRUE(http_call(pool, port, req, opts).has_value());
    ASSERT_EQ(pool.idle_count(), 1u);
  }
  // Server gone: the pooled attempt fails, the fresh attempt fails too —
  // the call returns nullopt but must not crash or hang.
  HttpRequest req;
  req.method = "GET";
  req.target = "/x";
  CallOptions opts;
  opts.deadline_seconds = 0.5;
  EXPECT_FALSE(http_call(pool, port, req, opts).has_value());
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST_P(ConnectionPoolBackendTest, BoundAndIdleTimeoutEnforced) {
  ConnectionPool::Options popts;
  popts.max_idle_per_peer = 2;
  popts.idle_timeout_seconds = 0.05;
  ConnectionPool pool(popts);

  EchoServer server(GetParam());
  // Park three connections; the bound keeps two.
  std::vector<ClientConnection> conns;
  for (int i = 0; i < 3; ++i) {
    auto c = ClientConnection::open(server.port(), 1.0);
    ASSERT_TRUE(c.has_value());
    HttpRequest req;
    req.method = "GET";
    req.target = "/warm";
    ASSERT_TRUE(
        c->exchange(req, Clock::now() + std::chrono::seconds(2)).has_value());
    ASSERT_TRUE(c->reusable());
    pool.release(std::move(*c));
  }
  EXPECT_EQ(pool.idle_count(), 2u);

  // Past the idle timeout, acquire discards instead of returning them.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(pool.acquire(server.port()).has_value());
  EXPECT_EQ(pool.idle_count(), 0u);
}

// --- backend selection ---

class IoBackendSelectionTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("BH_DISABLE_IO_URING"); }
};

TEST_F(IoBackendSelectionTest, ParseNames) {
  EXPECT_EQ(parse_io_backend("auto"), IoBackendKind::kAuto);
  EXPECT_EQ(parse_io_backend("epoll"), IoBackendKind::kEpoll);
  EXPECT_EQ(parse_io_backend("io_uring"), IoBackendKind::kIoUring);
  EXPECT_EQ(parse_io_backend("uring"), IoBackendKind::kIoUring);
  EXPECT_FALSE(parse_io_backend("kqueue").has_value());
  EXPECT_FALSE(parse_io_backend("").has_value());
}

TEST_F(IoBackendSelectionTest, AutoFallsBackToEpollWhenProbeFails) {
  // BH_DISABLE_IO_URING simulates a kernel without io_uring; `auto` must
  // still bring up a working loop, on epoll.
  ::setenv("BH_DISABLE_IO_URING", "1", 1);
  std::string why;
  EXPECT_FALSE(io_uring_supported(&why));
  EXPECT_NE(why.find("BH_DISABLE_IO_URING"), std::string::npos) << why;
  Reactor reactor(IoBackendKind::kAuto);
  EXPECT_STREQ(reactor.backend_name(), "epoll");
}

TEST_F(IoBackendSelectionTest, DisableEnvZeroMeansEnabled) {
  ::setenv("BH_DISABLE_IO_URING", "0", 1);
  std::string why;
  // "0" does not disable; the result is whatever the kernel probe says
  // (and the reason string, if unsupported, names the kernel, not the env).
  if (!io_uring_supported(&why)) {
    EXPECT_EQ(why.find("BH_DISABLE_IO_URING"), std::string::npos) << why;
  }
}

TEST_F(IoBackendSelectionTest, ExplicitIoUringErrorsCleanlyWhenUnsupported) {
  ::setenv("BH_DISABLE_IO_URING", "1", 1);
  try {
    Reactor reactor(IoBackendKind::kIoUring);
    FAIL() << "expected construction to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("io_uring"), std::string::npos);
  }
}

TEST_F(IoBackendSelectionTest, ExplicitEpollIsAlwaysHonored) {
  Reactor reactor(IoBackendKind::kEpoll);
  EXPECT_STREQ(reactor.backend_name(), "epoll");
}

TEST_F(IoBackendSelectionTest, UringBackendReportsItsName) {
  std::string why;
  if (!io_uring_supported(&why)) {
    GTEST_SKIP() << "io_uring unavailable: " << why;
  }
  Reactor reactor(IoBackendKind::kIoUring);
  EXPECT_STREQ(reactor.backend_name(), "io_uring");
  // A fresh loop has made no submissions yet; stats start at zero.
  const IoBackend::Stats stats = reactor.io_stats();
  EXPECT_EQ(stats.submit_calls, 0u);
}

}  // namespace
}  // namespace bh::proxy
