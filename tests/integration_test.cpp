// End-to-end integration tests: whole experiments on scaled-down workloads,
// checking the paper's qualitative results — who wins, by roughly what
// factor, and that the workload calibration lands in the published bands.
// These run the full pipeline (generator -> event queue -> architecture ->
// cost model -> metrics) and take a few seconds each.
#include <gtest/gtest.h>

#include "cache/miss_class.h"
#include "core/experiment.h"
#include "trace/generator.h"
#include "trace/stats.h"

namespace bh::core {
namespace {

constexpr double kScale = 1.0 / 128.0;

const std::vector<trace::Record>& dec_records() {
  static const std::vector<trace::Record> records =
      trace::TraceGenerator(trace::dec_workload().scaled(kScale)).generate_all();
  return records;
}

ExperimentConfig base_config(SystemKind kind) {
  ExperimentConfig cfg;
  cfg.workload = trace::dec_workload().scaled(kScale);
  cfg.cost_model = "rousskov-min";
  cfg.system = kind;
  return cfg;
}

TEST(IntegrationTest, HintsBeatHierarchyOnEveryCostModel) {
  for (const char* model : {"testbed", "rousskov-min", "rousskov-max"}) {
    auto hier_cfg = base_config(SystemKind::kHierarchy);
    hier_cfg.cost_model = model;
    auto hint_cfg = base_config(SystemKind::kHints);
    hint_cfg.cost_model = model;
    const auto hier = run_experiment_on(dec_records(), hier_cfg);
    const auto hints = run_experiment_on(dec_records(), hint_cfg);
    const double speedup = hier.metrics.mean_response_ms() /
                           hints.metrics.mean_response_ms();
    // Paper (Table 6): 1.28 .. 2.79 across traces and models.
    EXPECT_GT(speedup, 1.15) << model;
    EXPECT_LT(speedup, 3.5) << model;
  }
}

TEST(IntegrationTest, ArchitecturesAgreeOnGlobalHitRatio) {
  // With infinite caches all three architectures see the same stream of
  // compulsory/communication misses, so global hit ratios must be close
  // (hints lose a little to imperfect knowledge).
  const auto hier =
      run_experiment_on(dec_records(), base_config(SystemKind::kHierarchy));
  const auto dir =
      run_experiment_on(dec_records(), base_config(SystemKind::kDirectory));
  const auto hints =
      run_experiment_on(dec_records(), base_config(SystemKind::kHints));
  EXPECT_NEAR(hier.metrics.hit_ratio(), dir.metrics.hit_ratio(), 0.01);
  EXPECT_NEAR(hier.metrics.hit_ratio(), hints.metrics.hit_ratio(), 0.03);
  EXPECT_LE(hints.metrics.hit_ratio(), hier.metrics.hit_ratio() + 1e-9);
}

TEST(IntegrationTest, HintsBeatDirectoryWhichBeatsHierarchyWhenCongested) {
  // Figure 8: hints win everywhere. The directory beats the hierarchy when
  // store-and-forward is expensive (Max costs); at Min costs its per-miss
  // query round trip can cost it the edge, so only hints' win is asserted
  // there.
  for (const char* model : {"rousskov-min", "rousskov-max"}) {
    auto cfg = base_config(SystemKind::kHierarchy);
    cfg.cost_model = model;
    const auto hier = run_experiment_on(dec_records(), cfg);
    cfg.system = SystemKind::kDirectory;
    const auto dir = run_experiment_on(dec_records(), cfg);
    cfg.system = SystemKind::kHints;
    const auto hints = run_experiment_on(dec_records(), cfg);
    EXPECT_LT(hints.metrics.mean_response_ms(), dir.metrics.mean_response_ms())
        << model;
    if (std::string(model) == "rousskov-max") {
      EXPECT_LT(dir.metrics.mean_response_ms(), hier.metrics.mean_response_ms());
    }
  }
}

TEST(IntegrationTest, DecCalibrationMatchesPaperBands) {
  // Figure 3 (DEC): L1 ~0.50, L2 ~0.62, L3 ~0.78 cumulative hit ratios; we
  // accept generous bands around the published points.
  auto cfg = base_config(SystemKind::kHierarchy);
  const auto r = run_experiment_on(dec_records(), cfg);
  const auto& c = r.levels;
  ASSERT_GT(c.requests, 0u);
  const double l1 = static_cast<double>(c.hits[1]) / c.requests;
  const double l2 = l1 + static_cast<double>(c.hits[2]) / c.requests;
  const double l3 = l2 + static_cast<double>(c.hits[3]) / c.requests;
  EXPECT_NEAR(l1, 0.50, 0.12);
  EXPECT_NEAR(l2, 0.62, 0.12);
  EXPECT_NEAR(l3, 0.78, 0.08);
}

TEST(IntegrationTest, MissDecompositionMatchesFigure2Shape) {
  // DEC, infinite shared cache: compulsory ~19% of all requests, capacity 0,
  // communication and uncachable small.
  cache::MissClassifier mc;
  std::uint64_t counts[cache::kNumAccessClasses] = {};
  std::uint64_t requests = 0;
  for (const auto& rec : dec_records()) {
    if (rec.type == trace::RecordType::kModify) {
      mc.invalidate(rec.object);
      continue;
    }
    ++requests;
    ++counts[static_cast<int>(
        mc.access(rec.object, rec.size, rec.version, rec.uncachable, rec.error))];
  }
  const double compulsory =
      static_cast<double>(counts[static_cast<int>(cache::AccessClass::kCompulsoryMiss)]) /
      requests;
  const double capacity =
      static_cast<double>(counts[static_cast<int>(cache::AccessClass::kCapacityMiss)]) /
      requests;
  const double communication =
      static_cast<double>(
          counts[static_cast<int>(cache::AccessClass::kCommunicationMiss)]) /
      requests;
  EXPECT_NEAR(compulsory, 0.19, 0.03);
  EXPECT_DOUBLE_EQ(capacity, 0.0);
  EXPECT_GT(communication, 0.005);
  EXPECT_LT(communication, 0.10);
}

TEST(IntegrationTest, IdealPushBoundsThePushAlgorithms) {
  auto cfg = base_config(SystemKind::kHints);
  cfg.cost_model = "rousskov-max";  // push matters most under congestion
  const auto plain = run_experiment_on(dec_records(), cfg);

  cfg.hints.push_policy = "push-ideal";
  const auto ideal = run_experiment_on(dec_records(), cfg);

  cfg.hints.push_policy = "push-all";
  const auto all = run_experiment_on(dec_records(), cfg);

  // Ideal is an upper bound; push-all lands between plain and ideal.
  EXPECT_LT(ideal.metrics.mean_response_ms(), all.metrics.mean_response_ms());
  EXPECT_LT(all.metrics.mean_response_ms(), plain.metrics.mean_response_ms());
  // Paper: ideal gains up to 1.62x over no-push hints at Max costs.
  const double bound =
      plain.metrics.mean_response_ms() / ideal.metrics.mean_response_ms();
  EXPECT_GT(bound, 1.1);
  EXPECT_LT(bound, 2.2);
}

TEST(IntegrationTest, PushEfficiencyOrdering) {
  // Figure 11(a): update push is the most efficient; efficiency falls as the
  // push degree grows.
  auto cfg = base_config(SystemKind::kHints);
  cfg.baseline_node_capacity = 5_GB;
  cfg.hints.l1_capacity = 5_GB;

  cfg.hints.push_policy = "update-push";
  const auto upd = run_experiment_on(dec_records(), cfg);
  cfg.hints.push_policy = "push-1";
  const auto p1 = run_experiment_on(dec_records(), cfg);
  cfg.hints.push_policy = "push-all";
  const auto pall = run_experiment_on(dec_records(), cfg);

  EXPECT_GT(upd.push.efficiency(), p1.push.efficiency());
  EXPECT_GT(p1.push.efficiency(), pall.push.efficiency());
  EXPECT_GT(pall.push.bytes_pushed, p1.push.bytes_pushed);
}

TEST(IntegrationTest, HierarchyFiltersRootUpdates) {
  // Table 5: the metadata hierarchy's root sees roughly a third of the
  // updates a centralized directory would receive.
  const auto hints =
      run_experiment_on(dec_records(), base_config(SystemKind::kHints));
  ASSERT_GT(hints.leaf_updates, 0u);
  const double ratio = static_cast<double>(hints.root_updates) /
                       static_cast<double>(hints.leaf_updates);
  EXPECT_LT(ratio, 0.7);
  EXPECT_GT(ratio, 0.05);
}

TEST(IntegrationTest, SmallHintCachesDegradeRemoteHits) {
  // Figure 5's shape: a tiny hint cache loses almost all remote reach; a
  // large one keeps it.
  auto cfg = base_config(SystemKind::kHints);
  cfg.hints.hint_bytes = 64_KB;
  const auto small = run_experiment_on(dec_records(), cfg);
  cfg.hints.hint_bytes = 64_MB;
  const auto large = run_experiment_on(dec_records(), cfg);
  EXPECT_GT(large.metrics.hit_ratio(), small.metrics.hit_ratio() + 0.02);
}

TEST(IntegrationTest, StaleHintsDegradeGracefully) {
  // Figure 6's shape: minutes of propagation delay are tolerable, hours are
  // not; and delayed hints must surface as false positives/negatives, never
  // as wrong data.
  auto cfg = base_config(SystemKind::kHints);
  cfg.hints.hint_hop_delay = 30.0;  // ~1 minute end-to-end
  const auto fresh = run_experiment_on(dec_records(), cfg);
  cfg.hints.hint_hop_delay = 6 * 3600.0;  // half a day end-to-end
  const auto stale = run_experiment_on(dec_records(), cfg);
  EXPECT_GT(fresh.metrics.hit_ratio(), stale.metrics.hit_ratio());
  EXPECT_GT(stale.metrics.false_negatives + stale.metrics.false_positives,
            fresh.metrics.false_negatives + fresh.metrics.false_positives);
}

TEST(IntegrationTest, SpaceConstrainedRunsStayOrdered) {
  // Figure 8(b): with 5 GB nodes the ordering hierarchy > hints holds.
  auto hier_cfg = base_config(SystemKind::kHierarchy);
  hier_cfg.baseline_node_capacity = 1_GB;  // scaled-down trace, scaled disk
  auto hint_cfg = base_config(SystemKind::kHints);
  hint_cfg.hints.l1_capacity = 900_MB;
  hint_cfg.hints.hint_bytes = 100_MB;
  const auto hier = run_experiment_on(dec_records(), hier_cfg);
  const auto hints = run_experiment_on(dec_records(), hint_cfg);
  EXPECT_LT(hints.metrics.mean_response_ms(), hier.metrics.mean_response_ms());
}

TEST(IntegrationTest, ClientHintConfigurationTradeoff) {
  // Section 3.3: with a perfect client hint cache the alternate
  // configuration wins; with a >50% false-negative rate it loses.
  auto cfg = base_config(SystemKind::kHints);
  cfg.cost_model = "testbed";
  const auto proxy = run_experiment_on(dec_records(), cfg);

  cfg.hints.client_direct = true;
  cfg.hints.client_hint_false_negative = 0.0;
  const auto client_good = run_experiment_on(dec_records(), cfg);

  cfg.hints.client_hint_false_negative = 0.8;
  const auto client_bad = run_experiment_on(dec_records(), cfg);

  EXPECT_LT(client_good.metrics.mean_response_ms(),
            proxy.metrics.mean_response_ms());
  EXPECT_GT(client_bad.metrics.mean_response_ms(),
            client_good.metrics.mean_response_ms());
}

}  // namespace
}  // namespace bh::core
