// Property-style tests for the metadata hierarchy: randomized operation
// sequences checked against a ground-truth oracle.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "hints/metadata_hierarchy.h"
#include "net/topology.h"
#include "sim/event_queue.h"

namespace bh::hints {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v + 1} ; }

struct Oracle {
  std::unordered_map<std::uint64_t, std::unordered_set<NodeIndex>> holders;

  bool holds(std::uint64_t o, NodeIndex n) const {
    auto it = holders.find(o);
    return it != holders.end() && it->second.count(n) > 0;
  }
};

// With synchronous propagation and no evictions/invalidations, every hint
// must name a true holder: informs are monotone, so no hint can go stale.
TEST(MetadataPropertyTest, InsertOnlyHintsAlwaysNameRealHolders) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Oracle oracle;
  Rng rng(404);

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t o = rng.next_below(200);
    const auto n = NodeIndex(rng.next_below(32));
    meta.inform(n, obj(o));
    oracle.holders[o].insert(n);

    if (step % 50 != 0) continue;
    for (NodeIndex leaf = 0; leaf < 32; leaf += 5) {
      for (std::uint64_t q = 0; q < 200; q += 13) {
        const auto near = meta.find_nearest(leaf, obj(q));
        if (!near) continue;
        ASSERT_NE(*near, leaf) << "hint points at the asking node";
        ASSERT_TRUE(oracle.holds(q, *near))
            << "hint names node " << *near << " which never held object " << q;
      }
    }
  }
}

// Full chaos: informs, evictions, and consistency invalidations at zero
// delay. Structural invariants: hints never point at the asking node, and a
// consistency invalidation leaves no trace of the object anywhere.
TEST(MetadataPropertyTest, ChaosMaintainsStructuralInvariants) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Oracle oracle;
  Rng rng(505);

  for (int step = 0; step < 6000; ++step) {
    const std::uint64_t o = rng.next_below(100);
    const auto n = NodeIndex(rng.next_below(32));
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        meta.inform(n, obj(o));
        oracle.holders[o].insert(n);
        break;
      case 2:
        if (oracle.holds(o, n)) {
          meta.invalidate(n, obj(o));
          oracle.holders[o].erase(n);
        }
        break;
      case 3:
        if (rng.next_below(10) == 0) {  // rarer: object changes server-side
          meta.invalidate_object(obj(o));
          oracle.holders.erase(o);
          for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
            ASSERT_EQ(meta.find_nearest(leaf, obj(o)), std::nullopt);
          }
        }
        break;
    }
    if (step % 200 == 0) {
      for (NodeIndex leaf = 0; leaf < 32; leaf += 3) {
        for (std::uint64_t q = 0; q < 100; q += 7) {
          const auto near = meta.find_nearest(leaf, obj(q));
          if (near) ASSERT_NE(*near, leaf);
        }
      }
    }
  }
}

// Under synchronous removals, a hint may only name a non-holder transiently
// never — removals correct every leaf before returning. Verify: after any
// single eviction, no leaf hint names the evicted node for that object.
TEST(MetadataPropertyTest, EvictionLeavesNoDanglingPointerToTheEvictee) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Rng rng(606);

  for (int round = 0; round < 300; ++round) {
    const std::uint64_t o = rng.next_below(50);
    const auto a = NodeIndex(rng.next_below(32));
    const auto b = NodeIndex(rng.next_below(32));
    meta.inform(a, obj(o));
    meta.inform(b, obj(o));
    meta.invalidate(a, obj(o));
    for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
      const auto near = meta.find_nearest(leaf, obj(o));
      if (near) ASSERT_NE(*near, a) << "round " << round;
    }
    // Clean the slate for the next round.
    meta.invalidate_object(obj(o));
  }
}

// Regression for the old uint64_t child mask: with more than 64 leaves per
// L2 group or more than 64 groups, `1ULL << slot` past bit 63 was UB that
// (on x86) aliased slot k onto slot k % 64 — a holder at slot 65 made the
// hierarchy believe slot 1 held a copy, so slot-1 leaves were never told
// about it. The NodeSet-backed entries must keep every slot distinct.
TEST(MetadataPropertyTest, WideTopologiesKeepChildSlotsDistinct) {
  // 70 leaves per group (slots past 64 within an L2) and 66 groups (slots
  // past 64 at the root).
  const net::HierarchyTopology topo(4620, 70, 1);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);

  // L2-level aliasing: the first copy lands at slot 65 of group 0. Every
  // other leaf of the group must learn of it — under aliasing the leaf at
  // slot 1 was skipped as a supposed holder.
  meta.inform(65, obj(1));
  const auto near_slot1 = meta.find_nearest(1, obj(1));
  ASSERT_TRUE(near_slot1.has_value()) << "slot-1 leaf never told of the copy";
  EXPECT_EQ(*near_slot1, 65u);

  // Removing a same-group second copy at slot 1 must not wipe knowledge of
  // the slot-65 holder (aliased, both lived in bit 1).
  meta.inform(1, obj(1));
  meta.invalidate(1, obj(1));
  const auto near_after = meta.find_nearest(2, obj(1));
  ASSERT_TRUE(near_after.has_value());
  EXPECT_EQ(*near_after, 65u);

  // Root-level aliasing: the first copy of a fresh object lands in group 65
  // (leaf 65*70+3). Group 1's leaves must learn of it — under aliasing
  // group 1 was skipped as a supposed holder group.
  meta.inform(65 * 70 + 3, obj(2));
  const auto near_group1 = meta.find_nearest(70, obj(2));
  ASSERT_TRUE(near_group1.has_value()) << "group-1 leaf never told of the copy";
  EXPECT_EQ(*near_group1, 65u * 70 + 3);
}

// The insert-only oracle property, re-run on the wide topology so randomized
// traffic crosses the 64-slot boundary in both dimensions.
TEST(MetadataPropertyTest, WideTopologyHintsAlwaysNameRealHolders) {
  const net::HierarchyTopology topo(4620, 70, 1);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Oracle oracle;
  Rng rng(909);

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t o = rng.next_below(60);
    const auto n = NodeIndex(rng.next_below(4620));
    meta.inform(n, obj(o));
    oracle.holders[o].insert(n);

    if (step % 100 != 0) continue;
    for (NodeIndex leaf = 0; leaf < 4620; leaf += 301) {
      for (std::uint64_t q = 0; q < 60; q += 11) {
        const auto near = meta.find_nearest(leaf, obj(q));
        if (!near) continue;
        ASSERT_NE(*near, leaf) << "hint points at the asking node";
        ASSERT_TRUE(oracle.holds(q, *near))
            << "hint names node " << *near << " which never held object " << q;
      }
    }
  }
}

// Delayed propagation: messages in flight are allowed to create stale hints
// (priced as false positives at request time), but the system must converge
// once the queue drains, and draining must terminate.
TEST(MetadataPropertyTest, DelayedChaosConvergesWhenDrained) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataConfig cfg;
  cfg.hop_delay = 5.0;
  MetadataHierarchy meta(topo, cfg, queue);
  Rng rng(707);

  double t = 0;
  for (int step = 0; step < 2000; ++step) {
    t += rng.exponential(1.0);
    queue.run_until(t);
    const std::uint64_t o = rng.next_below(50);
    const auto n = NodeIndex(rng.next_below(32));
    if (rng.bernoulli(0.7)) {
      meta.inform(n, obj(o));
    } else {
      meta.invalidate(n, obj(o));
    }
  }
  queue.run_all();
  EXPECT_TRUE(queue.empty());
  // Reads must be safe after the dust settles.
  for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
    for (std::uint64_t q = 0; q < 50; ++q) {
      const auto near = meta.find_nearest(leaf, obj(q));
      if (near) EXPECT_NE(*near, leaf);
    }
  }
}

}  // namespace
}  // namespace bh::hints
