// Property-style tests for the metadata hierarchy: randomized operation
// sequences checked against a ground-truth oracle.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "hints/metadata_hierarchy.h"
#include "net/topology.h"
#include "sim/event_queue.h"

namespace bh::hints {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v + 1} ; }

struct Oracle {
  std::unordered_map<std::uint64_t, std::unordered_set<NodeIndex>> holders;

  bool holds(std::uint64_t o, NodeIndex n) const {
    auto it = holders.find(o);
    return it != holders.end() && it->second.count(n) > 0;
  }
};

// With synchronous propagation and no evictions/invalidations, every hint
// must name a true holder: informs are monotone, so no hint can go stale.
TEST(MetadataPropertyTest, InsertOnlyHintsAlwaysNameRealHolders) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Oracle oracle;
  Rng rng(404);

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t o = rng.next_below(200);
    const auto n = NodeIndex(rng.next_below(32));
    meta.inform(n, obj(o));
    oracle.holders[o].insert(n);

    if (step % 50 != 0) continue;
    for (NodeIndex leaf = 0; leaf < 32; leaf += 5) {
      for (std::uint64_t q = 0; q < 200; q += 13) {
        const auto near = meta.find_nearest(leaf, obj(q));
        if (!near) continue;
        ASSERT_NE(*near, leaf) << "hint points at the asking node";
        ASSERT_TRUE(oracle.holds(q, *near))
            << "hint names node " << *near << " which never held object " << q;
      }
    }
  }
}

// Full chaos: informs, evictions, and consistency invalidations at zero
// delay. Structural invariants: hints never point at the asking node, and a
// consistency invalidation leaves no trace of the object anywhere.
TEST(MetadataPropertyTest, ChaosMaintainsStructuralInvariants) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Oracle oracle;
  Rng rng(505);

  for (int step = 0; step < 6000; ++step) {
    const std::uint64_t o = rng.next_below(100);
    const auto n = NodeIndex(rng.next_below(32));
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        meta.inform(n, obj(o));
        oracle.holders[o].insert(n);
        break;
      case 2:
        if (oracle.holds(o, n)) {
          meta.invalidate(n, obj(o));
          oracle.holders[o].erase(n);
        }
        break;
      case 3:
        if (rng.next_below(10) == 0) {  // rarer: object changes server-side
          meta.invalidate_object(obj(o));
          oracle.holders.erase(o);
          for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
            ASSERT_EQ(meta.find_nearest(leaf, obj(o)), std::nullopt);
          }
        }
        break;
    }
    if (step % 200 == 0) {
      for (NodeIndex leaf = 0; leaf < 32; leaf += 3) {
        for (std::uint64_t q = 0; q < 100; q += 7) {
          const auto near = meta.find_nearest(leaf, obj(q));
          if (near) ASSERT_NE(*near, leaf);
        }
      }
    }
  }
}

// Under synchronous removals, a hint may only name a non-holder transiently
// never — removals correct every leaf before returning. Verify: after any
// single eviction, no leaf hint names the evicted node for that object.
TEST(MetadataPropertyTest, EvictionLeavesNoDanglingPointerToTheEvictee) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataHierarchy meta(topo, {}, queue);
  Rng rng(606);

  for (int round = 0; round < 300; ++round) {
    const std::uint64_t o = rng.next_below(50);
    const auto a = NodeIndex(rng.next_below(32));
    const auto b = NodeIndex(rng.next_below(32));
    meta.inform(a, obj(o));
    meta.inform(b, obj(o));
    meta.invalidate(a, obj(o));
    for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
      const auto near = meta.find_nearest(leaf, obj(o));
      if (near) ASSERT_NE(*near, a) << "round " << round;
    }
    // Clean the slate for the next round.
    meta.invalidate_object(obj(o));
  }
}

// Delayed propagation: messages in flight are allowed to create stale hints
// (priced as false positives at request time), but the system must converge
// once the queue drains, and draining must terminate.
TEST(MetadataPropertyTest, DelayedChaosConvergesWhenDrained) {
  const net::HierarchyTopology topo(32, 8, 4);
  sim::EventQueue queue;
  MetadataConfig cfg;
  cfg.hop_delay = 5.0;
  MetadataHierarchy meta(topo, cfg, queue);
  Rng rng(707);

  double t = 0;
  for (int step = 0; step < 2000; ++step) {
    t += rng.exponential(1.0);
    queue.run_until(t);
    const std::uint64_t o = rng.next_below(50);
    const auto n = NodeIndex(rng.next_below(32));
    if (rng.bernoulli(0.7)) {
      meta.inform(n, obj(o));
    } else {
      meta.invalidate(n, obj(o));
    }
  }
  queue.run_all();
  EXPECT_TRUE(queue.empty());
  // Reads must be safe after the dust settles.
  for (NodeIndex leaf = 0; leaf < 32; ++leaf) {
    for (std::uint64_t q = 0; q < 50; ++q) {
      const auto near = meta.find_nearest(leaf, obj(q));
      if (near) EXPECT_NE(*near, leaf);
    }
  }
}

}  // namespace
}  // namespace bh::hints
