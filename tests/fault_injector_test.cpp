// Unit tests for the failure-budget plumbing underneath the proxy daemon:
// FaultInjector rule matching and determinism, the jittered exponential
// backoff schedule, retrying http_call with a total deadline, the
// non-blocking connect path, and the checked numeric parses.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "proxy/fault_injector.h"
#include "proxy/http.h"
#include "proxy/origin_server.h"
#include "proxy/socket.h"

namespace bh::proxy {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

TEST(FaultInjectorTest, RuleMatchesOpAndPort) {
  FaultInjector injector(1);
  injector.add_rule(
      {FaultOp::kConnect, FaultKind::kConnectRefused, 1234, 1.0, -1, 0.0});
  // Wrong op, wrong port: no injection.
  EXPECT_EQ(injector.apply(FaultOp::kRecv, 1234), std::nullopt);
  EXPECT_EQ(injector.apply(FaultOp::kConnect, 999), std::nullopt);
  // Exact match fires.
  EXPECT_EQ(injector.apply(FaultOp::kConnect, 1234),
            FaultKind::kConnectRefused);
  EXPECT_EQ(injector.injections(), 1u);
}

TEST(FaultInjectorTest, WildcardPortAndInjectionCap) {
  FaultInjector injector(1);
  injector.add_rule({FaultOp::kRecv, FaultKind::kReset, 0, 1.0, /*max=*/2, 0.0});
  EXPECT_EQ(injector.apply(FaultOp::kRecv, 10), FaultKind::kReset);
  EXPECT_EQ(injector.apply(FaultOp::kRecv, 20), FaultKind::kReset);
  // The budget is spent: the rule goes inert.
  EXPECT_EQ(injector.apply(FaultOp::kRecv, 10), std::nullopt);
  EXPECT_EQ(injector.injections(), 2u);
}

TEST(FaultInjectorTest, ProbabilisticRulesAreSeedDeterministic) {
  auto sequence = [](std::uint64_t seed) {
    FaultInjector injector(seed);
    injector.add_rule({FaultOp::kSend, FaultKind::kReset, 0, 0.5, -1, 0.0});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.apply(FaultOp::kSend, 1).has_value());
    }
    return fired;
  };
  EXPECT_EQ(sequence(42), sequence(42));
  EXPECT_NE(sequence(42), sequence(43));
  // A 0.5 coin over 64 draws fires somewhere strictly between never and
  // always.
  const auto s = sequence(42);
  const auto hits = std::count(s.begin(), s.end(), true);
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
}

TEST(BackoffTest, DelayIsJitteredBoundedAndGrows) {
  CallOptions opts;
  opts.backoff_base_seconds = 0.01;
  opts.backoff_max_seconds = 0.08;
  Rng rng(11);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const double cap =
        std::min(opts.backoff_base_seconds * double(1 << attempt),
                 opts.backoff_max_seconds);
    for (int i = 0; i < 32; ++i) {
      const double d = backoff_delay(attempt, opts, rng);
      EXPECT_GT(d, 0.0);
      EXPECT_LE(d, cap);
    }
  }
  // Deterministic under the seed.
  Rng r1(5), r2(5);
  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(backoff_delay(attempt, opts, r1),
              backoff_delay(attempt, opts, r2));
  }
}

TEST(CheckedParseTest, RejectsMalformedNumbers) {
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64(""), std::nullopt);
  EXPECT_EQ(parse_u64("12x"), std::nullopt);
  EXPECT_EQ(parse_u64("x12"), std::nullopt);
  EXPECT_EQ(parse_u64("-1"), std::nullopt);
  EXPECT_EQ(parse_u64("99999999999999999999999"), std::nullopt);  // overflow
  EXPECT_EQ(parse_port("8080"), 8080);
  EXPECT_EQ(parse_port("0"), std::nullopt);       // never a valid peer
  EXPECT_EQ(parse_port("65536"), std::nullopt);   // out of range
  EXPECT_EQ(parse_port("80 "), std::nullopt);     // trailing junk
}

TEST(HttpCallTest, RetriesThroughTransientConnectFailures) {
  OriginServer origin;
  FaultInjector injector(3);
  // The first two connects are refused; the third goes through.
  injector.add_rule({FaultOp::kConnect, FaultKind::kConnectRefused,
                     origin.port(), 1.0, /*max=*/2, 0.0});
  ScopedFaultInjection active(injector);

  HttpRequest req;
  req.method = "GET";
  req.target = object_path(ObjectId{5}, 64);
  CallOptions opts;
  opts.max_attempts = 3;
  opts.deadline_seconds = 2.0;
  opts.backoff_base_seconds = 0.005;
  opts.backoff_max_seconds = 0.02;
  int attempts = 0;
  auto resp = http_call(origin.port(), req, opts, &attempts);
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(attempts, 3);
}

TEST(HttpCallTest, SingleShotDoesNotRetry) {
  OriginServer origin;
  FaultInjector injector(3);
  injector.add_rule({FaultOp::kConnect, FaultKind::kConnectRefused,
                     origin.port(), 1.0, /*max=*/1, 0.0});
  ScopedFaultInjection active(injector);

  HttpRequest req;
  req.method = "GET";
  req.target = object_path(ObjectId{6}, 64);
  int attempts = 0;
  auto resp = http_call(origin.port(), req, CallOptions{}, &attempts);
  EXPECT_FALSE(resp.has_value());  // the data-path contract: one shot, done
  EXPECT_EQ(attempts, 1);
}

TEST(HttpCallTest, DeadlineBoundsSilentPeer) {
  // A listener whose backlog accepts the connection but which never reads
  // or replies: without per-call deadlines this held the caller for the
  // full socket timeout.
  auto blackhole = TcpListener::bind_ephemeral();
  ASSERT_TRUE(blackhole.has_value());

  HttpRequest req;
  req.method = "GET";
  req.target = "/obj/0000000000000001";
  CallOptions opts;
  opts.deadline_seconds = 0.3;
  const auto start = std::chrono::steady_clock::now();
  auto resp = http_call(blackhole->port(), req, opts);
  const double elapsed = seconds_since(start);
  EXPECT_FALSE(resp.has_value());
  EXPECT_LT(elapsed, 2 * opts.deadline_seconds);
}

TEST(HttpCallTest, DeadlineCoversEveryRetryAttempt) {
  auto blackhole = TcpListener::bind_ephemeral();
  ASSERT_TRUE(blackhole.has_value());

  HttpRequest req;
  req.method = "GET";
  req.target = "/obj/0000000000000001";
  CallOptions opts;
  opts.deadline_seconds = 0.4;
  opts.max_attempts = 10;  // the budget, not the attempt count, must govern
  opts.backoff_base_seconds = 0.01;
  const auto start = std::chrono::steady_clock::now();
  int attempts = 0;
  auto resp = http_call(blackhole->port(), req, opts, &attempts);
  const double elapsed = seconds_since(start);
  EXPECT_FALSE(resp.has_value());
  EXPECT_LT(elapsed, 2 * opts.deadline_seconds);
  EXPECT_GE(attempts, 1);
  EXPECT_LT(attempts, 10);
}

TEST(TcpStreamTest, ConnectToClosedPortFailsFast) {
  // Grab an ephemeral port and close it again: nothing listens there.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::bind_ephemeral();
    ASSERT_TRUE(listener.has_value());
    dead_port = listener->port();
  }
  const auto start = std::chrono::steady_clock::now();
  auto stream = TcpStream::connect(dead_port, /*timeout_seconds=*/1.0);
  EXPECT_FALSE(stream.has_value());
  EXPECT_LT(seconds_since(start), 1.0);  // refused, not timed out
}

TEST(TcpStreamTest, SetTimeoutReportsFailure) {
  // An invalid fd cannot take a timeout; the failure must be visible, not
  // swallowed.
  TcpStream bogus{Fd(-1)};
  EXPECT_FALSE(bogus.set_timeout(1.0));
}

}  // namespace
}  // namespace bh::proxy
