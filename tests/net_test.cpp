// Tests for the topology and the cost models. The Rousskov model must
// reproduce every composed cell of Table 3 exactly; the testbed model must
// match the qualitative anchors of Section 2.1.1.
#include <gtest/gtest.h>

#include <memory>

#include "net/cost_model.h"
#include "net/topology.h"

namespace bh::net {
namespace {

// --- topology ---

TEST(TopologyTest, PaperDefaultShape) {
  const auto t = HierarchyTopology::paper_default();
  EXPECT_EQ(t.num_l1(), 64u);
  EXPECT_EQ(t.num_l2(), 8u);
  EXPECT_EQ(t.clients_per_l1(), 256u);
  EXPECT_EQ(t.num_clients(), 16384u);
}

TEST(TopologyTest, ClientMapping) {
  const auto t = HierarchyTopology::paper_default();
  EXPECT_EQ(t.l1_of_client(0), 0u);
  EXPECT_EQ(t.l1_of_client(255), 0u);
  EXPECT_EQ(t.l1_of_client(256), 1u);
  EXPECT_EQ(t.l1_of_client(16383), 63u);
  // Clients beyond the nominal population wrap.
  EXPECT_EQ(t.l1_of_client(16384), 0u);
}

TEST(TopologyTest, LcaLevels) {
  const auto t = HierarchyTopology::paper_default();
  EXPECT_EQ(t.lca_level(3, 3), 1);
  EXPECT_EQ(t.lca_level(0, 7), 2);   // same L2 group (0..7)
  EXPECT_EQ(t.lca_level(0, 8), 3);   // different groups
  EXPECT_EQ(t.lca_level(63, 56), 2);
  EXPECT_EQ(t.lca_level(63, 0), 3);
}

TEST(TopologyTest, RejectsZeroArity) {
  EXPECT_THROW(HierarchyTopology(0, 8, 256), std::invalid_argument);
  EXPECT_THROW(HierarchyTopology(64, 0, 256), std::invalid_argument);
  EXPECT_THROW(HierarchyTopology(64, 8, 0), std::invalid_argument);
}

TEST(TopologyTest, RaggedLastGroup) {
  const HierarchyTopology t(10, 8, 4);
  EXPECT_EQ(t.num_l2(), 2u);
  EXPECT_EQ(t.l2_of_l1(9), 1u);
  EXPECT_EQ(t.lca_level(8, 9), 2);
  EXPECT_EQ(t.lca_level(7, 8), 3);
}

// --- Rousskov model: every composed cell of Table 3 ---

TEST(RousskovTest, Table3TotalHierarchical) {
  const auto mn = RousskovCostModel::min();
  const auto mx = RousskovCostModel::max();
  EXPECT_DOUBLE_EQ(mn.hierarchy_hit(1, 8192), 163);
  EXPECT_DOUBLE_EQ(mx.hierarchy_hit(1, 8192), 352);
  EXPECT_DOUBLE_EQ(mn.hierarchy_hit(2, 8192), 271);
  EXPECT_DOUBLE_EQ(mx.hierarchy_hit(2, 8192), 2767);
  EXPECT_DOUBLE_EQ(mn.hierarchy_hit(3, 8192), 531);
  EXPECT_DOUBLE_EQ(mx.hierarchy_hit(3, 8192), 4667);
  EXPECT_DOUBLE_EQ(mn.hierarchy_miss(8192), 981);
  EXPECT_DOUBLE_EQ(mx.hierarchy_miss(8192), 7217);
}

TEST(RousskovTest, Table3TotalClientDirect) {
  const auto mn = RousskovCostModel::min();
  const auto mx = RousskovCostModel::max();
  EXPECT_DOUBLE_EQ(mn.direct_hit(1, 0), 163);
  EXPECT_DOUBLE_EQ(mx.direct_hit(1, 0), 352);
  EXPECT_DOUBLE_EQ(mn.direct_hit(2, 0), 180);
  EXPECT_DOUBLE_EQ(mx.direct_hit(2, 0), 2550);
  EXPECT_DOUBLE_EQ(mn.direct_hit(3, 0), 320);
  EXPECT_DOUBLE_EQ(mx.direct_hit(3, 0), 2850);
  EXPECT_DOUBLE_EQ(mn.direct_miss(0), 550);
  EXPECT_DOUBLE_EQ(mx.direct_miss(0), 3200);
}

TEST(RousskovTest, Table3TotalViaL1) {
  const auto mn = RousskovCostModel::min();
  const auto mx = RousskovCostModel::max();
  EXPECT_DOUBLE_EQ(mn.via_l1_hit(1, 0), 163);
  EXPECT_DOUBLE_EQ(mx.via_l1_hit(1, 0), 352);
  EXPECT_DOUBLE_EQ(mn.via_l1_hit(2, 0), 271);
  EXPECT_DOUBLE_EQ(mx.via_l1_hit(2, 0), 2767);
  EXPECT_DOUBLE_EQ(mn.via_l1_hit(3, 0), 411);
  EXPECT_DOUBLE_EQ(mx.via_l1_hit(3, 0), 3067);
  EXPECT_DOUBLE_EQ(mn.via_l1_miss(0), 641);
  EXPECT_DOUBLE_EQ(mx.via_l1_miss(0), 3417);
}

TEST(RousskovTest, ControlRttIsDatalessRoundTrip) {
  const auto mn = RousskovCostModel::min();
  EXPECT_DOUBLE_EQ(mn.control_rtt(1), 16 + 75);
  EXPECT_DOUBLE_EQ(mn.control_rtt(3), 100 + 120);
  EXPECT_LT(mn.control_rtt(3), mn.direct_hit(3, 0));  // no disk component
}

TEST(RousskovTest, SizeIndependent) {
  const auto mn = RousskovCostModel::min();
  EXPECT_DOUBLE_EQ(mn.hierarchy_hit(3, 100), mn.hierarchy_hit(3, 1000000));
}

TEST(RousskovTest, RejectsBadLevel) {
  const auto mn = RousskovCostModel::min();
  EXPECT_THROW(mn.hierarchy_hit(0, 0), std::out_of_range);
  EXPECT_THROW(mn.direct_hit(4, 0), std::out_of_range);
}

// --- testbed model: Section 2.1.1 anchors ---

TEST(TestbedTest, HierarchyVsDirectGapAt8KB) {
  const auto tb = TestbedCostModel::fitted();
  const double gap = tb.hierarchy_hit(3, 8192) - tb.direct_hit(3, 8192);
  // Paper: 545 ms gap for an 8 KB object fetched from the Austin (L3) cache.
  EXPECT_NEAR(gap, 545, 120);
  const double ratio = tb.hierarchy_hit(3, 8192) / tb.direct_hit(3, 8192);
  EXPECT_NEAR(ratio, 2.5, 0.4);
}

TEST(TestbedTest, L1VsDistantCacheRatiosAt8KB) {
  const auto tb = TestbedCostModel::fitted();
  // Paper: L1 accesses are 4.75x faster than L2-distance direct accesses and
  // 6.17x faster than L3-distance ones for 8 KB objects.
  EXPECT_NEAR(tb.direct_hit(2, 8192) / tb.hierarchy_hit(1, 8192), 4.75, 1.2);
  EXPECT_NEAR(tb.direct_hit(3, 8192) / tb.hierarchy_hit(1, 8192), 6.17, 1.5);
}

TEST(TestbedTest, MonotoneInSize) {
  const auto tb = TestbedCostModel::fitted();
  for (std::uint64_t s = 2048; s <= 1048576; s *= 2) {
    EXPECT_LT(tb.hierarchy_hit(3, s), tb.hierarchy_hit(3, s * 2));
    EXPECT_LT(tb.direct_hit(2, s), tb.direct_hit(2, s * 2));
    EXPECT_LT(tb.direct_miss(s), tb.direct_miss(s * 2));
  }
}

TEST(TestbedTest, MonotoneInDistanceAndLevel) {
  const auto tb = TestbedCostModel::fitted();
  for (std::uint64_t s : {2048u, 65536u, 1048576u}) {
    EXPECT_LT(tb.direct_hit(1, s), tb.direct_hit(2, s));
    EXPECT_LT(tb.direct_hit(2, s), tb.direct_hit(3, s));
    EXPECT_LT(tb.hierarchy_hit(1, s), tb.hierarchy_hit(2, s));
    EXPECT_LT(tb.hierarchy_hit(2, s), tb.hierarchy_hit(3, s));
    EXPECT_LT(tb.hierarchy_hit(3, s), tb.hierarchy_miss(s));
  }
}

TEST(TestbedTest, MissesAreNotSlowedByDirectPath) {
  const auto tb = TestbedCostModel::fitted();
  // The hierarchy slows misses; the via-L1 direct path must not (by much).
  EXPECT_LT(tb.via_l1_miss(8192), tb.hierarchy_miss(8192));
}

TEST(TestbedTest, ViaL1WrapsDirect) {
  const auto tb = TestbedCostModel::fitted();
  EXPECT_GT(tb.via_l1_hit(3, 8192), tb.direct_hit(3, 8192));
  EXPECT_DOUBLE_EQ(tb.via_l1_hit(1, 8192), tb.hierarchy_hit(1, 8192));
}

// --- factory ---

TEST(CostModelFactoryTest, KnownNames) {
  EXPECT_EQ(make_cost_model("testbed")->name(), "testbed");
  EXPECT_EQ(make_cost_model("rousskov-min")->name(), "rousskov-min");
  EXPECT_EQ(make_cost_model("max")->name(), "rousskov-max");
  EXPECT_THROW(make_cost_model("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace bh::net
