// Torture tests for the incremental HTTP parser: the reactor feeds it
// whatever recv() produced, so a message split at *any* byte boundary —
// mid-method, mid-header-name, mid-CRLF, mid-body — must parse identically
// to the same bytes in one buffer.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "proxy/http.h"

namespace bh::proxy {
namespace {

std::string request_wire() {
  HttpRequest req;
  req.method = "POST";
  req.target = "/obj/00000000000000aa?size=64";
  req.headers.emplace_back("X-From", "4242");
  req.headers.emplace_back("Connection", "keep-alive");
  req.body = "hello hint batch";
  return serialize(req);
}

std::string response_wire() {
  HttpResponse resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.headers.emplace_back("X-Cache", "HIT");
  resp.body = std::string(137, '\x7f') + std::string("\x00\r\n tail", 8);
  return serialize(resp);
}

void check_request(HttpParser& p) {
  ASSERT_TRUE(p.complete());
  const HttpRequest& r = p.request();
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.target, "/obj/00000000000000aa?size=64");
  EXPECT_EQ(r.header("x-from").value_or(""), "4242");
  EXPECT_TRUE(r.wants_keep_alive());
  EXPECT_EQ(r.body, "hello hint batch");
}

TEST(HttpParserTest, SplitAtEveryByteBoundary) {
  const std::string wire = request_wire();
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    HttpParser p(HttpParser::Kind::kRequest);
    std::size_t used = p.feed(std::string_view(wire).substr(0, cut));
    EXPECT_EQ(used, cut);
    used = p.feed(std::string_view(wire).substr(cut));
    EXPECT_EQ(used, wire.size() - cut) << "cut at " << cut;
    check_request(p);
  }
}

TEST(HttpParserTest, OneByteAtATime) {
  const std::string wire = request_wire();
  HttpParser p(HttpParser::Kind::kRequest);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_FALSE(p.complete()) << "completed early at byte " << i;
    ASSERT_EQ(p.feed(std::string_view(wire).substr(i, 1)), 1u);
  }
  check_request(p);
  // A complete parser consumes nothing further.
  EXPECT_EQ(p.feed("GET / HTTP/1.0\r\n"), 0u);
}

TEST(HttpParserTest, ResponseSplitAtEveryByteBoundary) {
  const std::string wire = response_wire();
  const std::string expect_body =
      std::string(137, '\x7f') + std::string("\x00\r\n tail", 8);
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    HttpParser p(HttpParser::Kind::kResponse);
    p.feed(std::string_view(wire).substr(0, cut));
    p.feed(std::string_view(wire).substr(cut));
    ASSERT_TRUE(p.complete()) << "cut at " << cut;
    EXPECT_EQ(p.response().status, 200);
    EXPECT_EQ(p.response().body, expect_body);
  }
}

TEST(HttpParserTest, PipelinedRequestsConsumeExactlyOneMessage) {
  const std::string one = request_wire();
  std::string wire = one + one + one;
  HttpParser p(HttpParser::Kind::kRequest);
  for (int i = 0; i < 3; ++i) {
    const std::size_t used = p.feed(wire);
    ASSERT_EQ(used, one.size()) << "message " << i;
    check_request(p);
    wire.erase(0, used);
    p.reset();
  }
  EXPECT_TRUE(wire.empty());
}

TEST(HttpParserTest, PipelinedOneByteChunksAcrossMessageBoundary) {
  // Two different requests delivered one byte at a time through the same
  // parser, reset between messages — the reactor's exact usage pattern.
  HttpRequest second;
  second.method = "GET";
  second.target = "/metrics";
  const std::string wire = request_wire() + serialize(second);

  HttpParser p(HttpParser::Kind::kRequest);
  std::string pending;
  int completed = 0;
  for (char ch : wire) {
    pending.push_back(ch);
    const std::size_t used = p.feed(pending);
    pending.erase(0, used);
    if (p.complete()) {
      if (completed == 0) {
        check_request(p);
      } else {
        EXPECT_EQ(p.request().method, "GET");
        EXPECT_EQ(p.request().target, "/metrics");
        EXPECT_FALSE(p.request().wants_keep_alive());
      }
      ++completed;
      p.reset();
    }
  }
  EXPECT_EQ(completed, 2);
  EXPECT_TRUE(pending.empty());
}

TEST(HttpParserTest, OversizedHeaderBlockRejected) {
  HttpParser::Limits limits;
  limits.max_head_bytes = 128;
  HttpParser p(HttpParser::Kind::kRequest, limits);
  std::string wire = "GET / HTTP/1.0\r\nX-Pad: ";
  wire += std::string(200, 'a');
  wire += "\r\n\r\n";
  p.feed(wire);
  EXPECT_TRUE(p.failed());
  // Terminal until reset: further bytes are not consumed.
  EXPECT_EQ(p.feed("more"), 0u);
  p.reset();
  EXPECT_EQ(p.state(), HttpParser::State::kStartLine);
}

TEST(HttpParserTest, OversizedHeaderRejectedEvenWithoutTerminator) {
  // The limit must trip while the "\r\n\r\n" is still nowhere in sight —
  // an attacker streaming an endless header cannot balloon the buffer.
  HttpParser::Limits limits;
  limits.max_head_bytes = 128;
  HttpParser p(HttpParser::Kind::kRequest, limits);
  const std::string chunk(64, 'a');
  p.feed("GET / HTTP/1.0\r\nX-Pad: ");
  p.feed(chunk);
  p.feed(chunk);
  EXPECT_TRUE(p.failed());
}

TEST(HttpParserTest, BodyLargerThanLimitRejectedUpFront) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser p(HttpParser::Kind::kRequest, limits);
  p.feed("POST /x HTTP/1.0\r\nContent-Length: 17\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(HttpParserTest, TruncatedContentLengthWaitsForMoreBytes) {
  // A body shorter than Content-Length is not an error — it is an
  // incomplete message: the parser stays in kBody until the bytes arrive
  // (EOF mid-message is the connection layer's call, not the parser's).
  HttpParser p(HttpParser::Kind::kRequest);
  p.feed("POST /x HTTP/1.0\r\nContent-Length: 10\r\n\r\n12345");
  EXPECT_EQ(p.state(), HttpParser::State::kBody);
  EXPECT_FALSE(p.complete());
  EXPECT_TRUE(p.started());
  p.feed("67890");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().body, "1234567890");
}

TEST(HttpParserTest, MalformedContentLengthRejected) {
  for (const char* bad : {"abc", "12x", "-5", "99999999999999999999999", ""}) {
    HttpParser p(HttpParser::Kind::kRequest);
    std::string wire = "POST /x HTTP/1.0\r\nContent-Length: ";
    wire += bad;
    wire += "\r\n\r\n";
    p.feed(wire);
    EXPECT_TRUE(p.failed()) << "Content-Length: " << bad;
  }
}

TEST(HttpParserTest, MalformedStartLinesRejected) {
  for (const char* bad :
       {"GET\r\n\r\n", "GET /x\r\n\r\n", "\r\n\r\n", "GET  HTTP/1.0\r\n\r\n"}) {
    HttpParser p(HttpParser::Kind::kRequest);
    p.feed(bad);
    EXPECT_TRUE(p.failed()) << "start line: " << bad;
  }
  HttpParser resp(HttpParser::Kind::kResponse);
  resp.feed("HTTP/1.0 abc Nope\r\n\r\n");
  EXPECT_TRUE(resp.failed());
}

TEST(HttpParserTest, HeaderWithoutColonRejected) {
  HttpParser p(HttpParser::Kind::kRequest);
  p.feed("GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(HttpParserTest, ZeroLengthBodyCompletesAtHeaderEnd) {
  HttpParser p(HttpParser::Kind::kRequest);
  const std::string wire = "GET /x HTTP/1.0\r\nContent-Length: 0\r\n\r\n";
  EXPECT_EQ(p.feed(wire), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.request().body.empty());
}

TEST(HttpParserTest, StartedFlagTracksMessageBoundaries) {
  HttpParser p(HttpParser::Kind::kRequest);
  EXPECT_FALSE(p.started());
  p.feed("G");
  EXPECT_TRUE(p.started());
  p.feed("ET / HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(p.complete());
  p.reset();
  EXPECT_FALSE(p.started());
}

TEST(HttpParserTest, OneShotParsersRejectTrailingBytes) {
  const std::string wire = request_wire();
  EXPECT_TRUE(parse_request(wire).has_value());
  EXPECT_FALSE(parse_request(wire + "x").has_value());
  EXPECT_FALSE(parse_request(wire.substr(0, wire.size() - 1)).has_value());
}

TEST(HttpParserTest, SerializeHeadSuppliesContentLength) {
  HttpResponse resp;
  resp.body = "12345";
  const std::string head = serialize_head(resp, resp.body.size());
  EXPECT_NE(head.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
  // The head alone plus the body round-trips through the parser.
  HttpParser p(HttpParser::Kind::kResponse);
  p.feed(head);
  p.feed(resp.body.str());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.response().body, "12345");
}

}  // namespace
}  // namespace bh::proxy
