// Tests for the LRU object cache and the miss classifier.
#include <gtest/gtest.h>

#include <vector>

#include "cache/lru_cache.h"
#include "cache/miss_class.h"

namespace bh::cache {
namespace {

ObjectId obj(std::uint64_t v) { return ObjectId{v}; }

// --- LruCache ---

TEST(LruCacheTest, InsertFindPeek) {
  LruCache c(1000);
  EXPECT_TRUE(c.insert(obj(1), 100, 1, false));
  ASSERT_NE(c.find(obj(1)), nullptr);
  EXPECT_EQ(c.find(obj(1))->size, 100u);
  EXPECT_EQ(c.peek(obj(2)), nullptr);
  EXPECT_EQ(c.used_bytes(), 100u);
  EXPECT_EQ(c.object_count(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache c(300);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  c.find(obj(1));  // 1 becomes MRU; 2 is now LRU
  std::vector<std::uint64_t> evicted;
  c.insert(obj(4), 100, 1, false,
           [&](const LruCache::Entry& e) { evicted.push_back(e.id.value); });
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(c.contains(obj(1)));
  EXPECT_FALSE(c.contains(obj(2)));
}

TEST(LruCacheTest, EvictsMultipleToFit) {
  LruCache c(300);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  std::vector<std::uint64_t> evicted;
  c.insert(obj(4), 250, 1, false,
           [&](const LruCache::Entry& e) { evicted.push_back(e.id.value); });
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(c.used_bytes(), 250u);
}

TEST(LruCacheTest, OversizedObjectIsNotCached) {
  LruCache c(100);
  EXPECT_FALSE(c.insert(obj(1), 101, 1, false));
  EXPECT_EQ(c.object_count(), 0u);
}

TEST(LruCacheTest, UnlimitedNeverEvicts) {
  LruCache c;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    c.insert(obj(i + 1), 1_MB, 1, false,
             [](const LruCache::Entry&) { FAIL() << "unexpected eviction"; });
  }
  EXPECT_EQ(c.object_count(), 10000u);
  EXPECT_TRUE(c.unlimited());
}

TEST(LruCacheTest, ReinsertUpdatesSizeAndVersion) {
  LruCache c(1000);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(1), 300, 2, false);
  EXPECT_EQ(c.used_bytes(), 300u);
  EXPECT_EQ(c.peek(obj(1))->version, 2u);
  EXPECT_EQ(c.object_count(), 1u);
}

TEST(LruCacheTest, ReinsertSmallerReleasesBytes) {
  LruCache c(1000);
  c.insert(obj(1), 800, 1, false);
  c.insert(obj(1), 100, 2, false);
  EXPECT_EQ(c.used_bytes(), 100u);
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache c(1000);
  c.insert(obj(1), 100, 1, false);
  EXPECT_TRUE(c.erase(obj(1)));
  EXPECT_FALSE(c.erase(obj(1)));
  EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LruCacheTest, AgeMovesToEvictionFront) {
  LruCache c(300);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  c.age(obj(3));  // freshly inserted but aged: evicted first
  std::vector<std::uint64_t> evicted;
  c.insert(obj(4), 100, 1, false,
           [&](const LruCache::Entry& e) { evicted.push_back(e.id.value); });
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{3}));
}

TEST(LruCacheTest, PushedFlagSemantics) {
  LruCache c(1000);
  c.insert(obj(1), 100, 1, /*pushed=*/true);
  EXPECT_TRUE(c.peek(obj(1))->pushed);
  // A demand insert over a pushed copy clears the tag.
  c.insert(obj(1), 100, 1, /*pushed=*/false);
  EXPECT_FALSE(c.peek(obj(1))->pushed);
  // A push over a demand copy must not re-tag it.
  c.insert(obj(1), 100, 2, /*pushed=*/true);
  EXPECT_FALSE(c.peek(obj(1))->pushed);
}

TEST(LruCacheTest, PeekDoesNotPromote) {
  LruCache c(200);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.peek(obj(1));
  c.peek_mut(obj(1));
  std::vector<std::uint64_t> evicted;
  c.insert(obj(3), 100, 1, false,
           [&](const LruCache::Entry& e) { evicted.push_back(e.id.value); });
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{1}));  // peek kept 1 as LRU
}

TEST(LruCacheTest, EvictionByteAccountingIsExact) {
  LruCache c(1000);
  c.insert(obj(1), 400, 1, false);
  c.insert(obj(2), 300, 1, false);
  c.insert(obj(3), 200, 1, false);
  EXPECT_EQ(c.used_bytes(), 900u);
  std::uint64_t evicted_bytes = 0;
  c.insert(obj(4), 600, 1, false, [&](const LruCache::Entry& e) {
    evicted_bytes += e.size;
  });
  // Needs 600 free: evicts 1 (400) then 2 (300), and no more.
  EXPECT_EQ(evicted_bytes, 700u);
  EXPECT_EQ(c.used_bytes(), 800u);
  EXPECT_EQ(c.object_count(), 2u);
  EXPECT_TRUE(c.contains(obj(3)));
  EXPECT_TRUE(c.contains(obj(4)));
}

TEST(LruCacheTest, EvictCallbackSeesFullEntryState) {
  // The victim passed to on_evict carries the pushed/used_since_push tags so
  // push-efficiency accounting (Figure 11a) can classify the evicted bytes.
  LruCache c(200);
  c.insert(obj(1), 100, 3, /*pushed=*/true);
  c.peek_mut(obj(1))->used_since_push = true;  // remote read tagged it
  c.insert(obj(2), 100, 1, false);
  std::vector<LruCache::Entry> victims;
  c.insert(obj(3), 150, 1, false,
           [&](const LruCache::Entry& e) { victims.push_back(e); });
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].id.value, 1u);
  EXPECT_EQ(victims[0].size, 100u);
  EXPECT_EQ(victims[0].version, 3u);
  EXPECT_TRUE(victims[0].pushed);
  EXPECT_TRUE(victims[0].used_since_push);
  EXPECT_FALSE(victims[1].pushed);
}

TEST(LruCacheTest, MutationInsideEvictCallbackIsSafe) {
  // Evict handlers in the hint systems call back into caches (e.g. dropping
  // hints); the victim must already be fully removed when the callback runs.
  LruCache c(300);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  bool checked = false;
  c.insert(obj(4), 100, 1, false, [&](const LruCache::Entry& e) {
    EXPECT_FALSE(c.contains(e.id));
    EXPECT_EQ(c.used_bytes(), 200u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

TEST(LruCacheTest, AgeReordersWithinList) {
  LruCache c(400);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  c.age(obj(2));  // order MRU->LRU is now 3, 1, 2
  std::vector<std::uint64_t> order;
  c.for_each([&](const LruCache::Entry& e) { order.push_back(e.id.value); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 1, 2}));
  // find() promotes an aged entry back to MRU.
  c.find(obj(2));
  order.clear();
  c.for_each([&](const LruCache::Entry& e) { order.push_back(e.id.value); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(LruCacheTest, AgeTailAndMissingAreNoOps) {
  LruCache c(400);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.age(obj(1));   // already the tail
  c.age(obj(99));  // absent
  std::vector<std::uint64_t> order;
  c.for_each([&](const LruCache::Entry& e) { order.push_back(e.id.value); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 1}));
}

TEST(LruCacheTest, SlotReuseAfterEraseKeepsListConsistent) {
  // Erase/insert cycles recycle slab slots; the recency list must stay
  // coherent through arbitrary reuse.
  LruCache c(10000);
  for (std::uint64_t i = 1; i <= 50; ++i) c.insert(obj(i), 10, 1, false);
  for (std::uint64_t i = 1; i <= 50; i += 2) c.erase(obj(i));
  for (std::uint64_t i = 51; i <= 75; ++i) c.insert(obj(i), 10, 1, false);
  EXPECT_EQ(c.object_count(), 50u);
  EXPECT_EQ(c.used_bytes(), 500u);
  std::vector<std::uint64_t> order;
  c.for_each([&](const LruCache::Entry& e) { order.push_back(e.id.value); });
  ASSERT_EQ(order.size(), 50u);
  // MRU end: the fresh inserts in reverse insertion order.
  EXPECT_EQ(order.front(), 75u);
  // LRU end: the oldest surviving even id.
  EXPECT_EQ(order.back(), 2u);
}

TEST(LruCacheTest, ReinsertLargerEvictsOthersNotItself) {
  LruCache c(300);
  c.insert(obj(1), 100, 1, false);
  c.insert(obj(2), 100, 1, false);
  c.insert(obj(3), 100, 1, false);
  std::vector<std::uint64_t> evicted;
  // Growing 3 in place forces an eviction, but never of 3 itself.
  c.insert(obj(3), 250, 2, false,
           [&](const LruCache::Entry& e) { evicted.push_back(e.id.value); });
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(c.contains(obj(3)));
  EXPECT_EQ(c.peek(obj(3))->size, 250u);
  EXPECT_EQ(c.used_bytes(), 250u);
}

// Capacity accounting stays consistent under arbitrary operation sequences.
class LruCachePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruCachePropertyTest, UsageNeverExceedsCapacity) {
  const std::uint64_t cap = GetParam();
  LruCache c(cap);
  std::uint64_t seed = 12345;
  for (int i = 0; i < 5000; ++i) {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t id = (seed >> 33) % 200 + 1;
    const std::uint64_t size = (seed >> 13) % 400 + 1;
    switch (seed % 3) {
      case 0:
        c.insert(obj(id), size, 1, (seed >> 5) & 1);
        break;
      case 1:
        c.find(obj(id));
        break;
      case 2:
        c.erase(obj(id));
        break;
    }
    ASSERT_LE(c.used_bytes(), cap);
    // Recount bytes from scratch.
    std::uint64_t sum = 0;
    std::size_t n = 0;
    c.for_each([&](const LruCache::Entry& e) {
      sum += e.size;
      ++n;
    });
    ASSERT_EQ(sum, c.used_bytes());
    ASSERT_EQ(n, c.object_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruCachePropertyTest,
                         ::testing::Values(500, 1000, 5000, 50000));

// --- MissClassifier ---

TEST(MissClassTest, FirstAccessIsCompulsory) {
  MissClassifier mc;
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, false),
            AccessClass::kCompulsoryMiss);
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, false), AccessClass::kHit);
}

TEST(MissClassTest, ErrorAndUncachableClassified) {
  MissClassifier mc;
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, true), AccessClass::kErrorMiss);
  EXPECT_EQ(mc.access(obj(2), 100, 1, true, false),
            AccessClass::kUncachableMiss);
  // Neither entered the cache.
  EXPECT_FALSE(mc.data().contains(obj(1)));
  EXPECT_FALSE(mc.data().contains(obj(2)));
}

TEST(MissClassTest, VersionBumpIsCommunicationMiss) {
  MissClassifier mc;
  mc.access(obj(1), 100, 1, false, false);
  EXPECT_EQ(mc.access(obj(1), 100, 2, false, false),
            AccessClass::kCommunicationMiss);
  EXPECT_EQ(mc.access(obj(1), 100, 2, false, false), AccessClass::kHit);
}

TEST(MissClassTest, InvalidatedThenAccessedIsCommunicationMiss) {
  MissClassifier mc;
  mc.access(obj(1), 100, 1, false, false);
  mc.invalidate(obj(1));
  EXPECT_EQ(mc.access(obj(1), 100, 2, false, false),
            AccessClass::kCommunicationMiss);
}

TEST(MissClassTest, EvictionIsCapacityMiss) {
  MissClassifier mc(150);
  mc.access(obj(1), 100, 1, false, false);
  mc.access(obj(2), 100, 1, false, false);  // evicts 1
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, false),
            AccessClass::kCapacityMiss);
}

TEST(MissClassTest, InfiniteCacheHasNoCapacityMisses) {
  MissClassifier mc;
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    mc.access(obj(i), 1000, 1, false, false);
  }
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    EXPECT_EQ(mc.access(obj(i), 1000, 1, false, false), AccessClass::kHit);
  }
}

TEST(MissClassTest, NegativeCachingServesRepeatErrorsLocally) {
  MissClassifier mc(kUnlimitedBytes, /*negative_ttl_seconds=*/60.0);
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, true, 0.0),
            AccessClass::kErrorMiss);
  // The repeat within the TTL is still an error, but from the negative cache.
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, true, 30.0),
            AccessClass::kErrorMiss);
  EXPECT_EQ(mc.negative_hits(), 1u);
  // Past the TTL the cache re-probes the server.
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, true, 120.0),
            AccessClass::kErrorMiss);
  EXPECT_EQ(mc.negative_hits(), 1u);
}

TEST(MissClassTest, NegativeCachingMasksSuccesses) {
  MissClassifier mc(kUnlimitedBytes, 60.0);
  mc.access(obj(1), 100, 1, false, true, 0.0);
  // A would-have-succeeded request inside the TTL is served the cached error.
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, false, 10.0),
            AccessClass::kErrorMiss);
  EXPECT_EQ(mc.masked_successes(), 1u);
  // After expiry it proceeds normally and is compulsory (never cached).
  EXPECT_EQ(mc.access(obj(1), 100, 1, false, false, 120.0),
            AccessClass::kCompulsoryMiss);
}

TEST(MissClassTest, NegativeCachingOffByDefault) {
  MissClassifier mc;
  mc.access(obj(1), 100, 1, false, true, 0.0);
  mc.access(obj(1), 100, 1, false, true, 1.0);
  EXPECT_EQ(mc.negative_hits(), 0u);
}

TEST(MissClassTest, ClassNames) {
  EXPECT_STREQ(access_class_name(AccessClass::kHit), "hit");
  EXPECT_STREQ(access_class_name(AccessClass::kCompulsoryMiss), "compulsory");
  EXPECT_FALSE(is_miss(AccessClass::kHit));
  EXPECT_TRUE(is_miss(AccessClass::kCapacityMiss));
}

}  // namespace
}  // namespace bh::cache
