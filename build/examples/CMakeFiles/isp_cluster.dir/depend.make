# Empty dependencies file for isp_cluster.
# This may be replaced when dependencies are built.
