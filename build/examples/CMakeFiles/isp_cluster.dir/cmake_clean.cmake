file(REMOVE_RECURSE
  "CMakeFiles/isp_cluster.dir/isp_cluster.cpp.o"
  "CMakeFiles/isp_cluster.dir/isp_cluster.cpp.o.d"
  "isp_cluster"
  "isp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
