file(REMOVE_RECURSE
  "CMakeFiles/proxy_daemons.dir/proxy_daemons.cpp.o"
  "CMakeFiles/proxy_daemons.dir/proxy_daemons.cpp.o.d"
  "proxy_daemons"
  "proxy_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
