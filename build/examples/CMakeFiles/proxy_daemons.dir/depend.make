# Empty dependencies file for proxy_daemons.
# This may be replaced when dependencies are built.
