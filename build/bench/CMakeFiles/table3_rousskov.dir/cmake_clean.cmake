file(REMOVE_RECURSE
  "CMakeFiles/table3_rousskov.dir/table3_rousskov.cpp.o"
  "CMakeFiles/table3_rousskov.dir/table3_rousskov.cpp.o.d"
  "table3_rousskov"
  "table3_rousskov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rousskov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
