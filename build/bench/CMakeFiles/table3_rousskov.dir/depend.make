# Empty dependencies file for table3_rousskov.
# This may be replaced when dependencies are built.
