# Empty dependencies file for fig10_push.
# This may be replaced when dependencies are built.
