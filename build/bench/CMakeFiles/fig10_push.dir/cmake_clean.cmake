file(REMOVE_RECURSE
  "CMakeFiles/fig10_push.dir/fig10_push.cpp.o"
  "CMakeFiles/fig10_push.dir/fig10_push.cpp.o.d"
  "fig10_push"
  "fig10_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
