# Empty compiler generated dependencies file for fig5_hint_size.
# This may be replaced when dependencies are built.
