# Empty compiler generated dependencies file for micro_hintcache.
# This may be replaced when dependencies are built.
