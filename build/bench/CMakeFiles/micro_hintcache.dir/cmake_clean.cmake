file(REMOVE_RECURSE
  "CMakeFiles/micro_hintcache.dir/micro_hintcache.cpp.o"
  "CMakeFiles/micro_hintcache.dir/micro_hintcache.cpp.o.d"
  "micro_hintcache"
  "micro_hintcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hintcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
