# Empty compiler generated dependencies file for fig2_miss_decomposition.
# This may be replaced when dependencies are built.
