file(REMOVE_RECURSE
  "CMakeFiles/fig2_miss_decomposition.dir/fig2_miss_decomposition.cpp.o"
  "CMakeFiles/fig2_miss_decomposition.dir/fig2_miss_decomposition.cpp.o.d"
  "fig2_miss_decomposition"
  "fig2_miss_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_miss_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
