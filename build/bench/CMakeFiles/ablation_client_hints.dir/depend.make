# Empty dependencies file for ablation_client_hints.
# This may be replaced when dependencies are built.
