file(REMOVE_RECURSE
  "CMakeFiles/ablation_client_hints.dir/ablation_client_hints.cpp.o"
  "CMakeFiles/ablation_client_hints.dir/ablation_client_hints.cpp.o.d"
  "ablation_client_hints"
  "ablation_client_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_client_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
