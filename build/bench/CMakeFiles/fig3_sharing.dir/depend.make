# Empty dependencies file for fig3_sharing.
# This may be replaced when dependencies are built.
