file(REMOVE_RECURSE
  "CMakeFiles/fig3_sharing.dir/fig3_sharing.cpp.o"
  "CMakeFiles/fig3_sharing.dir/fig3_sharing.cpp.o.d"
  "fig3_sharing"
  "fig3_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
