# Empty dependencies file for ablation_icp.
# This may be replaced when dependencies are built.
