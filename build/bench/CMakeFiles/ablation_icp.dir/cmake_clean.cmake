file(REMOVE_RECURSE
  "CMakeFiles/ablation_icp.dir/ablation_icp.cpp.o"
  "CMakeFiles/ablation_icp.dir/ablation_icp.cpp.o.d"
  "ablation_icp"
  "ablation_icp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_icp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
