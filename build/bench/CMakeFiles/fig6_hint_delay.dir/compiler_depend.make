# Empty compiler generated dependencies file for fig6_hint_delay.
# This may be replaced when dependencies are built.
