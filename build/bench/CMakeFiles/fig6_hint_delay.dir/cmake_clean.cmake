file(REMOVE_RECURSE
  "CMakeFiles/fig6_hint_delay.dir/fig6_hint_delay.cpp.o"
  "CMakeFiles/fig6_hint_delay.dir/fig6_hint_delay.cpp.o.d"
  "fig6_hint_delay"
  "fig6_hint_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hint_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
