# Empty dependencies file for fig11_push_efficiency.
# This may be replaced when dependencies are built.
