# Empty compiler generated dependencies file for table5_update_load.
# This may be replaced when dependencies are built.
