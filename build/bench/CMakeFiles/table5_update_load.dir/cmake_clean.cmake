file(REMOVE_RECURSE
  "CMakeFiles/table5_update_load.dir/table5_update_load.cpp.o"
  "CMakeFiles/table5_update_load.dir/table5_update_load.cpp.o.d"
  "table5_update_load"
  "table5_update_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_update_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
