# Empty dependencies file for fig1_testbed.
# This may be replaced when dependencies are built.
