file(REMOVE_RECURSE
  "CMakeFiles/fig1_testbed.dir/fig1_testbed.cpp.o"
  "CMakeFiles/fig1_testbed.dir/fig1_testbed.cpp.o.d"
  "fig1_testbed"
  "fig1_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
