# Empty compiler generated dependencies file for table4_traces.
# This may be replaced when dependencies are built.
