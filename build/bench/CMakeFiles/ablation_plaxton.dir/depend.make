# Empty dependencies file for ablation_plaxton.
# This may be replaced when dependencies are built.
