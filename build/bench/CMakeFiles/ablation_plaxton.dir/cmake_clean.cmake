file(REMOVE_RECURSE
  "CMakeFiles/ablation_plaxton.dir/ablation_plaxton.cpp.o"
  "CMakeFiles/ablation_plaxton.dir/ablation_plaxton.cpp.o.d"
  "ablation_plaxton"
  "ablation_plaxton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plaxton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
