# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/hints_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_property_test[1]_include.cmake")
include("/root/repo/build/tests/front_cache_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/plaxton_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/icp_test[1]_include.cmake")
include("/root/repo/build/tests/plaxton_directory_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
