file(REMOVE_RECURSE
  "CMakeFiles/front_cache_test.dir/front_cache_test.cpp.o"
  "CMakeFiles/front_cache_test.dir/front_cache_test.cpp.o.d"
  "front_cache_test"
  "front_cache_test.pdb"
  "front_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/front_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
