# Empty dependencies file for front_cache_test.
# This may be replaced when dependencies are built.
