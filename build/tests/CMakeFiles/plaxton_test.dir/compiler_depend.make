# Empty compiler generated dependencies file for plaxton_test.
# This may be replaced when dependencies are built.
