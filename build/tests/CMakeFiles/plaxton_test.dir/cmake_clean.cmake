file(REMOVE_RECURSE
  "CMakeFiles/plaxton_test.dir/plaxton_test.cpp.o"
  "CMakeFiles/plaxton_test.dir/plaxton_test.cpp.o.d"
  "plaxton_test"
  "plaxton_test.pdb"
  "plaxton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plaxton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
