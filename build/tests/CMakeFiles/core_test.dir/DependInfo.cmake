
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/core_test.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/bh_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/plaxton/CMakeFiles/bh_plaxton.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bh_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hints/CMakeFiles/bh_hints.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
