# Empty compiler generated dependencies file for plaxton_directory_test.
# This may be replaced when dependencies are built.
