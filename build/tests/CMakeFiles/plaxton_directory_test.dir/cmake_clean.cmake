file(REMOVE_RECURSE
  "CMakeFiles/plaxton_directory_test.dir/plaxton_directory_test.cpp.o"
  "CMakeFiles/plaxton_directory_test.dir/plaxton_directory_test.cpp.o.d"
  "plaxton_directory_test"
  "plaxton_directory_test.pdb"
  "plaxton_directory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plaxton_directory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
