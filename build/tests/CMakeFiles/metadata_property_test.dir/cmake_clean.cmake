file(REMOVE_RECURSE
  "CMakeFiles/metadata_property_test.dir/metadata_property_test.cpp.o"
  "CMakeFiles/metadata_property_test.dir/metadata_property_test.cpp.o.d"
  "metadata_property_test"
  "metadata_property_test.pdb"
  "metadata_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
