# Empty dependencies file for metadata_property_test.
# This may be replaced when dependencies are built.
