# Empty dependencies file for bh_proto.
# This may be replaced when dependencies are built.
