
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/hint_peer.cpp" "src/proto/CMakeFiles/bh_proto.dir/hint_peer.cpp.o" "gcc" "src/proto/CMakeFiles/bh_proto.dir/hint_peer.cpp.o.d"
  "/root/repo/src/proto/transport.cpp" "src/proto/CMakeFiles/bh_proto.dir/transport.cpp.o" "gcc" "src/proto/CMakeFiles/bh_proto.dir/transport.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/proto/CMakeFiles/bh_proto.dir/wire.cpp.o" "gcc" "src/proto/CMakeFiles/bh_proto.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hints/CMakeFiles/bh_hints.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
