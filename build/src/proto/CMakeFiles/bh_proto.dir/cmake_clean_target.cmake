file(REMOVE_RECURSE
  "libbh_proto.a"
)
