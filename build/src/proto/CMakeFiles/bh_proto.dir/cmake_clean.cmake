file(REMOVE_RECURSE
  "CMakeFiles/bh_proto.dir/hint_peer.cpp.o"
  "CMakeFiles/bh_proto.dir/hint_peer.cpp.o.d"
  "CMakeFiles/bh_proto.dir/transport.cpp.o"
  "CMakeFiles/bh_proto.dir/transport.cpp.o.d"
  "CMakeFiles/bh_proto.dir/wire.cpp.o"
  "CMakeFiles/bh_proto.dir/wire.cpp.o.d"
  "libbh_proto.a"
  "libbh_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
