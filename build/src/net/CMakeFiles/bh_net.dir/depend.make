# Empty dependencies file for bh_net.
# This may be replaced when dependencies are built.
