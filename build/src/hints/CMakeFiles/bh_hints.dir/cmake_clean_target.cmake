file(REMOVE_RECURSE
  "libbh_hints.a"
)
