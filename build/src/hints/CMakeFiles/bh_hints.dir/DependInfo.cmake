
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hints/front_cache.cpp" "src/hints/CMakeFiles/bh_hints.dir/front_cache.cpp.o" "gcc" "src/hints/CMakeFiles/bh_hints.dir/front_cache.cpp.o.d"
  "/root/repo/src/hints/hint_cache.cpp" "src/hints/CMakeFiles/bh_hints.dir/hint_cache.cpp.o" "gcc" "src/hints/CMakeFiles/bh_hints.dir/hint_cache.cpp.o.d"
  "/root/repo/src/hints/metadata_hierarchy.cpp" "src/hints/CMakeFiles/bh_hints.dir/metadata_hierarchy.cpp.o" "gcc" "src/hints/CMakeFiles/bh_hints.dir/metadata_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
