file(REMOVE_RECURSE
  "CMakeFiles/bh_hints.dir/front_cache.cpp.o"
  "CMakeFiles/bh_hints.dir/front_cache.cpp.o.d"
  "CMakeFiles/bh_hints.dir/hint_cache.cpp.o"
  "CMakeFiles/bh_hints.dir/hint_cache.cpp.o.d"
  "CMakeFiles/bh_hints.dir/metadata_hierarchy.cpp.o"
  "CMakeFiles/bh_hints.dir/metadata_hierarchy.cpp.o.d"
  "libbh_hints.a"
  "libbh_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
