# Empty dependencies file for bh_hints.
# This may be replaced when dependencies are built.
