
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/bh_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/bh_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/hint_system.cpp" "src/core/CMakeFiles/bh_core.dir/hint_system.cpp.o" "gcc" "src/core/CMakeFiles/bh_core.dir/hint_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bh_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hints/CMakeFiles/bh_hints.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bh_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
