file(REMOVE_RECURSE
  "CMakeFiles/bh_core.dir/experiment.cpp.o"
  "CMakeFiles/bh_core.dir/experiment.cpp.o.d"
  "CMakeFiles/bh_core.dir/hint_system.cpp.o"
  "CMakeFiles/bh_core.dir/hint_system.cpp.o.d"
  "libbh_core.a"
  "libbh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
