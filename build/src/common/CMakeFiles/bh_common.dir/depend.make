# Empty dependencies file for bh_common.
# This may be replaced when dependencies are built.
