file(REMOVE_RECURSE
  "libbh_common.a"
)
