file(REMOVE_RECURSE
  "CMakeFiles/bh_common.dir/md5.cpp.o"
  "CMakeFiles/bh_common.dir/md5.cpp.o.d"
  "CMakeFiles/bh_common.dir/rng.cpp.o"
  "CMakeFiles/bh_common.dir/rng.cpp.o.d"
  "CMakeFiles/bh_common.dir/table.cpp.o"
  "CMakeFiles/bh_common.dir/table.cpp.o.d"
  "CMakeFiles/bh_common.dir/zipf.cpp.o"
  "CMakeFiles/bh_common.dir/zipf.cpp.o.d"
  "libbh_common.a"
  "libbh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
