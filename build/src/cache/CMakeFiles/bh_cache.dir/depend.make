# Empty dependencies file for bh_cache.
# This may be replaced when dependencies are built.
