file(REMOVE_RECURSE
  "CMakeFiles/bh_cache.dir/consistency_sim.cpp.o"
  "CMakeFiles/bh_cache.dir/consistency_sim.cpp.o.d"
  "CMakeFiles/bh_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/bh_cache.dir/lru_cache.cpp.o.d"
  "CMakeFiles/bh_cache.dir/miss_class.cpp.o"
  "CMakeFiles/bh_cache.dir/miss_class.cpp.o.d"
  "libbh_cache.a"
  "libbh_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
