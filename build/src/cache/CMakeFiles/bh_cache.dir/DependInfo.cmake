
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/consistency_sim.cpp" "src/cache/CMakeFiles/bh_cache.dir/consistency_sim.cpp.o" "gcc" "src/cache/CMakeFiles/bh_cache.dir/consistency_sim.cpp.o.d"
  "/root/repo/src/cache/lru_cache.cpp" "src/cache/CMakeFiles/bh_cache.dir/lru_cache.cpp.o" "gcc" "src/cache/CMakeFiles/bh_cache.dir/lru_cache.cpp.o.d"
  "/root/repo/src/cache/miss_class.cpp" "src/cache/CMakeFiles/bh_cache.dir/miss_class.cpp.o" "gcc" "src/cache/CMakeFiles/bh_cache.dir/miss_class.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bh_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
