# Empty compiler generated dependencies file for bh_proxy.
# This may be replaced when dependencies are built.
