file(REMOVE_RECURSE
  "CMakeFiles/bh_proxy.dir/http.cpp.o"
  "CMakeFiles/bh_proxy.dir/http.cpp.o.d"
  "CMakeFiles/bh_proxy.dir/origin_server.cpp.o"
  "CMakeFiles/bh_proxy.dir/origin_server.cpp.o.d"
  "CMakeFiles/bh_proxy.dir/proxy_server.cpp.o"
  "CMakeFiles/bh_proxy.dir/proxy_server.cpp.o.d"
  "CMakeFiles/bh_proxy.dir/socket.cpp.o"
  "CMakeFiles/bh_proxy.dir/socket.cpp.o.d"
  "libbh_proxy.a"
  "libbh_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
