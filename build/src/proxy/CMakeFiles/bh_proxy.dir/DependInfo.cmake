
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proxy/http.cpp" "src/proxy/CMakeFiles/bh_proxy.dir/http.cpp.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/http.cpp.o.d"
  "/root/repo/src/proxy/origin_server.cpp" "src/proxy/CMakeFiles/bh_proxy.dir/origin_server.cpp.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/origin_server.cpp.o.d"
  "/root/repo/src/proxy/proxy_server.cpp" "src/proxy/CMakeFiles/bh_proxy.dir/proxy_server.cpp.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/proxy_server.cpp.o.d"
  "/root/repo/src/proxy/socket.cpp" "src/proxy/CMakeFiles/bh_proxy.dir/socket.cpp.o" "gcc" "src/proxy/CMakeFiles/bh_proxy.dir/socket.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hints/CMakeFiles/bh_hints.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/bh_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
