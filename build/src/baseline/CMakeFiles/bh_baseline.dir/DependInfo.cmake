
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/central_directory.cpp" "src/baseline/CMakeFiles/bh_baseline.dir/central_directory.cpp.o" "gcc" "src/baseline/CMakeFiles/bh_baseline.dir/central_directory.cpp.o.d"
  "/root/repo/src/baseline/data_hierarchy.cpp" "src/baseline/CMakeFiles/bh_baseline.dir/data_hierarchy.cpp.o" "gcc" "src/baseline/CMakeFiles/bh_baseline.dir/data_hierarchy.cpp.o.d"
  "/root/repo/src/baseline/icp.cpp" "src/baseline/CMakeFiles/bh_baseline.dir/icp.cpp.o" "gcc" "src/baseline/CMakeFiles/bh_baseline.dir/icp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bh_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bh_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
