file(REMOVE_RECURSE
  "libbh_baseline.a"
)
