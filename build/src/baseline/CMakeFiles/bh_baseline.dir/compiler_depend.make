# Empty compiler generated dependencies file for bh_baseline.
# This may be replaced when dependencies are built.
