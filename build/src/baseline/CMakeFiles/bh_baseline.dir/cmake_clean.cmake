file(REMOVE_RECURSE
  "CMakeFiles/bh_baseline.dir/central_directory.cpp.o"
  "CMakeFiles/bh_baseline.dir/central_directory.cpp.o.d"
  "CMakeFiles/bh_baseline.dir/data_hierarchy.cpp.o"
  "CMakeFiles/bh_baseline.dir/data_hierarchy.cpp.o.d"
  "CMakeFiles/bh_baseline.dir/icp.cpp.o"
  "CMakeFiles/bh_baseline.dir/icp.cpp.o.d"
  "libbh_baseline.a"
  "libbh_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
