file(REMOVE_RECURSE
  "CMakeFiles/bh_plaxton.dir/plaxton.cpp.o"
  "CMakeFiles/bh_plaxton.dir/plaxton.cpp.o.d"
  "CMakeFiles/bh_plaxton.dir/plaxton_directory.cpp.o"
  "CMakeFiles/bh_plaxton.dir/plaxton_directory.cpp.o.d"
  "libbh_plaxton.a"
  "libbh_plaxton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_plaxton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
