file(REMOVE_RECURSE
  "libbh_plaxton.a"
)
