# Empty compiler generated dependencies file for bh_plaxton.
# This may be replaced when dependencies are built.
