file(REMOVE_RECURSE
  "libbh_trace.a"
)
