# Empty dependencies file for bh_trace.
# This may be replaced when dependencies are built.
