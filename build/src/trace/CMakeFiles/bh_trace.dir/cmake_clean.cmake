file(REMOVE_RECURSE
  "CMakeFiles/bh_trace.dir/generator.cpp.o"
  "CMakeFiles/bh_trace.dir/generator.cpp.o.d"
  "CMakeFiles/bh_trace.dir/stats.cpp.o"
  "CMakeFiles/bh_trace.dir/stats.cpp.o.d"
  "CMakeFiles/bh_trace.dir/trace_io.cpp.o"
  "CMakeFiles/bh_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/bh_trace.dir/workload.cpp.o"
  "CMakeFiles/bh_trace.dir/workload.cpp.o.d"
  "libbh_trace.a"
  "libbh_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
